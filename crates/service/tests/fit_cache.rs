//! Fit-cache correctness: cached predictions must be **bit-identical** to
//! uncached ones on every workload, and the plan-shape key must collapse
//! literal-perturbed instances of a template onto one entry.

use proptest::prelude::*;
use std::sync::Arc;
use uaq_core::{Prediction, Predictor, PredictorConfig};
use uaq_cost::{calibrate, CalibrationConfig, FitCache, HardwareProfile};
use uaq_engine::{plan_query, Plan, PlanBuilder, Pred};
use uaq_service::SharedFitCache;
use uaq_stats::Rng;
use uaq_storage::{Catalog, SampleCatalog, Value};
use uaq_workloads::Benchmark;

fn setup() -> (Predictor, Catalog, SampleCatalog) {
    let catalog = uaq_datagen::GenConfig::new(0.002, 0.0, 42).build();
    let mut rng = Rng::new(7);
    let units = calibrate(
        &HardwareProfile::pc1(),
        &CalibrationConfig::default(),
        &mut rng,
    );
    let samples = catalog.draw_samples(0.05, 2, &mut rng);
    (
        Predictor::new(units, PredictorConfig::default()),
        catalog,
        samples,
    )
}

/// Exact equality on everything the prediction's distribution is built
/// from — no epsilons anywhere.
fn assert_bit_identical(a: &Prediction, b: &Prediction, what: &str) {
    assert_eq!(a.mean_ms().to_bits(), b.mean_ms().to_bits(), "{what}: mean");
    assert_eq!(a.var().to_bits(), b.var().to_bits(), "{what}: var");
    let (ba, bb) = (&a.breakdown, &b.breakdown);
    assert_eq!(
        ba.unit_variance.to_bits(),
        bb.unit_variance.to_bits(),
        "{what}: unit_variance"
    );
    assert_eq!(
        ba.selectivity_exact.to_bits(),
        bb.selectivity_exact.to_bits(),
        "{what}: selectivity_exact"
    );
    assert_eq!(
        ba.covariance_bounds.to_bits(),
        bb.covariance_bounds.to_bits(),
        "{what}: covariance_bounds"
    );
    assert_eq!(
        ba.interaction.to_bits(),
        bb.interaction.to_bits(),
        "{what}: interaction"
    );
    assert_eq!(a.sel_estimates.len(), b.sel_estimates.len(), "{what}");
    for (ea, eb) in a.sel_estimates.iter().zip(b.sel_estimates.iter()) {
        assert_eq!(ea.rho.to_bits(), eb.rho.to_bits(), "{what}: rho");
        assert_eq!(ea.var.to_bits(), eb.var.to_bits(), "{what}: sel var");
    }
}

/// The golden test of the ISSUE: across MICRO, SELJOIN, and TPCH, a
/// prediction served through the cache — cold (miss + fill) *and* warm
/// (pure hit) — is bit-identical to the uncached reference.
#[test]
fn cached_predictions_bit_identical_on_all_workloads() {
    let (predictor, catalog, samples) = setup();
    let cache = SharedFitCache::default();
    let mut rng = Rng::new(123);
    for benchmark in Benchmark::ALL {
        let instances = match benchmark {
            Benchmark::Micro => 1,
            Benchmark::SelJoin => 1,
            Benchmark::Tpch => 1,
        };
        let specs = benchmark.queries(&catalog, instances, &mut rng);
        for spec in &specs {
            let plan = plan_query(spec, &catalog);
            let reference = predictor.predict(&plan, &catalog, &samples);
            let cold = predictor.predict_with_cache(&plan, &catalog, &samples, &cache);
            let warm = predictor.predict_with_cache(&plan, &catalog, &samples, &cache);
            let label = format!("{}/{}", benchmark.label(), spec.name);
            assert_bit_identical(&reference, &cold, &format!("{label} cold"));
            assert_bit_identical(&reference, &warm, &format!("{label} warm"));
        }
    }
    let stats = cache.stats();
    // Every warm pass must have skipped the grid fits entirely.
    assert!(stats.fit_hits >= stats.fit_misses, "{stats:?}");
    assert!(stats.shapes > 0);
}

/// Literal-perturbed instances of one template must share a cache entry:
/// the second query's `NodeCostContext`s come from the cache even though
/// its literals (and therefore its selectivities and fits) differ.
#[test]
fn literal_perturbed_plans_share_contexts() {
    let (predictor, catalog, samples) = setup();
    let cache = SharedFitCache::default();
    let plan_with_cut = |cut: i64| {
        let mut b = PlanBuilder::new();
        let l = b.seq_scan("lineitem", Pred::lt("l_shipdate", Value::Int(cut)));
        b.build(l)
    };
    let p1 = plan_with_cut(800);
    let p2 = plan_with_cut(2000);
    assert_eq!(p1.shape_signature(), p2.shape_signature());

    predictor.predict_with_cache(&p1, &catalog, &samples, &cache);
    let stats1 = cache.stats();
    assert_eq!(stats1.context_misses, 1);
    assert_eq!(stats1.shapes, 1);

    let cached = predictor.predict_with_cache(&p2, &catalog, &samples, &cache);
    let stats2 = cache.stats();
    assert_eq!(stats2.context_hits, 1, "{stats2:?}");
    assert_eq!(stats2.shapes, 1, "one shared shape entry");
    // Different literals ⇒ different selectivities ⇒ the fits themselves
    // miss (they depend on the estimate distributions)…
    assert_eq!(stats2.fit_hits, 0, "{stats2:?}");
    // …and the result still matches an uncached run exactly.
    let reference = predictor.predict(&p2, &catalog, &samples);
    assert_bit_identical(&reference, &cached, "perturbed");
}

/// Random single-scan plans: same structure with different literals always
/// hashes equal (and hits the shape entry); changing the filtered column
/// changes the shape.
fn scan_plan(table: &str, col: &str, cut: i64) -> Plan {
    let mut b = PlanBuilder::new();
    let s = b.seq_scan(table, Pred::lt(col, Value::Int(cut)));
    b.build(s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn structurally_equal_plans_hash_equal(cut_a in 1i64..3000, cut_b in 1i64..3000) {
        let a = scan_plan("lineitem", "l_shipdate", cut_a);
        let b = scan_plan("lineitem", "l_shipdate", cut_b);
        prop_assert_eq!(a.shape_signature(), b.shape_signature());
        prop_assert_eq!(a.shape_hash(), b.shape_hash());
        let c = scan_plan("lineitem", "l_quantity", cut_a);
        prop_assert!(a.shape_signature() != c.shape_signature());
        // The literal key is the complement: equal shape, but injective on
        // the literals the shape masks.
        prop_assert_eq!(
            cut_a == cut_b,
            a.literal_key() == b.literal_key(),
            "literal keys must separate exactly the distinct cuts"
        );
    }

    #[test]
    fn literal_perturbed_joins_hit_the_cache(cut_a in 1i64..4000, cut_b in 1i64..4000) {
        let (predictor, catalog, samples) = small_setup();
        let join = |cut: i64| {
            let mut b = PlanBuilder::new();
            let t = b.seq_scan("t", Pred::lt("b", Value::Int(cut)));
            let u = b.seq_scan("u", Pred::True);
            let j = b.hash_join(t, u, "a", "x");
            Arc::new(b.build(j))
        };
        let cache = SharedFitCache::default();
        predictor.predict_with_cache(&join(cut_a), &catalog, &samples, &cache);
        predictor.predict_with_cache(&join(cut_b), &catalog, &samples, &cache);
        let stats = cache.stats();
        prop_assert_eq!(stats.shapes, 1);
        // Second prediction reused the shape entry: a context hit, or —
        // when both cuts produce bit-equal estimates — a full fit hit.
        prop_assert!(stats.context_hits + stats.fit_hits >= 1, "{:?}", stats);
    }
}

/// Cheap hand-built catalog for the per-case property tests (the datagen
/// catalog is too expensive to rebuild dozens of times).
fn small_setup() -> (Predictor, Catalog, SampleCatalog) {
    use uaq_storage::{Column, Schema, Table};
    let mut c = Catalog::new();
    let s = Schema::new(vec![Column::int("a"), Column::int("b")]);
    let rows = (0..4000)
        .map(|i| vec![Value::Int((i % 50) as i64), Value::Int(i as i64)])
        .collect();
    c.add_table(Table::new("t", s, rows));
    let s2 = Schema::new(vec![Column::int("x"), Column::int("y")]);
    let rows2 = (0..2000)
        .map(|i| vec![Value::Int((i % 50) as i64), Value::Int(i as i64)])
        .collect();
    c.add_table(Table::new("u", s2, rows2));
    let mut rng = Rng::new(19);
    let units = calibrate(
        &HardwareProfile::pc2(),
        &CalibrationConfig::default(),
        &mut rng,
    );
    let samples = c.draw_samples(0.05, 1, &mut rng);
    (
        Predictor::new(units, PredictorConfig::default()),
        c,
        samples,
    )
}

/// One cache shared across two *different catalogs* must never cross-serve
/// contexts: the catalog fingerprint in the key separates same-shape plans
/// over different databases, and every prediction still matches its own
/// uncached reference bit-for-bit.
#[test]
fn distinct_catalogs_never_share_entries() {
    use uaq_storage::{Column, Schema, Table};
    let build_catalog = |rows: usize| {
        let mut c = Catalog::new();
        let s = Schema::new(vec![Column::int("a"), Column::int("b")]);
        let data = (0..rows)
            .map(|i| vec![Value::Int((i % 50) as i64), Value::Int(i as i64)])
            .collect();
        c.add_table(Table::new("t", s, data));
        c
    };
    let big = build_catalog(8000);
    let small = build_catalog(2000);
    assert_ne!(big.fingerprint(), small.fingerprint());

    let mut rng = Rng::new(29);
    let units = calibrate(
        &HardwareProfile::pc1(),
        &CalibrationConfig::default(),
        &mut rng,
    );
    let predictor = Predictor::new(units, PredictorConfig::default());
    let samples_big = big.draw_samples(0.05, 1, &mut rng);
    let samples_small = small.draw_samples(0.05, 1, &mut rng);
    let plan = scan_plan("t", "b", 1000);

    let cache = SharedFitCache::default();
    let on_big = predictor.predict_with_cache(&plan, &big, &samples_big, &cache);
    let on_small = predictor.predict_with_cache(&plan, &small, &samples_small, &cache);
    // Same plan shape, two catalogs: two separate cache entries…
    assert_eq!(cache.stats().shapes, 2, "{:?}", cache.stats());
    assert_eq!(cache.stats().context_hits, 0, "{:?}", cache.stats());
    // …and each result identical to its own uncached reference.
    assert_bit_identical(
        &predictor.predict(&plan, &big, &samples_big),
        &on_big,
        "big catalog",
    );
    assert_bit_identical(
        &predictor.predict(&plan, &small, &samples_small),
        &on_small,
        "small catalog",
    );
}

/// The cache trait surface stays usable through a `&dyn` object (the
/// predictor takes `&dyn FitCache`).
#[test]
fn works_through_dyn_object() {
    let (predictor, catalog, samples) = setup();
    let cache = SharedFitCache::default();
    let dyn_cache: &dyn FitCache = &cache;
    let plan = scan_plan("customer", "c_acctbal", 500);
    let a = predictor.predict_with_cache(&plan, &catalog, &samples, dyn_cache);
    let b = predictor.predict_with_cache(&plan, &catalog, &samples, dyn_cache);
    assert_bit_identical(&a, &b, "dyn");
    assert_eq!(cache.stats().fit_hits, 1);
}
