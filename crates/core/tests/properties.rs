//! Property-based tests for the predictor: invariants that must hold for
//! arbitrary (small) databases, predicates, and sampling randomness.

use proptest::prelude::*;
use uaq_core::{Predictor, PredictorConfig, Variant};
use uaq_cost::{calibrate, CalibrationConfig, HardwareProfile};
use uaq_engine::{plan_query, JoinStep, Pred, QuerySpec, TableRef};
use uaq_stats::Rng;
use uaq_storage::{Catalog, Column, Schema, Table, Value};

fn catalog(t: &[(i64, i64)], u: &[(i64, i64)]) -> Catalog {
    let mut c = Catalog::new();
    let ts = Schema::new(vec![Column::int("a"), Column::int("b")]);
    c.add_table(Table::new(
        "t",
        ts,
        t.iter()
            .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
            .collect(),
    ));
    let us = Schema::new(vec![Column::int("x"), Column::int("y")]);
    c.add_table(Table::new(
        "u",
        us,
        u.iter()
            .map(|&(x, y)| vec![Value::Int(x), Value::Int(y)])
            .collect(),
    ));
    c
}

fn rows_strategy(min: usize, max: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..6, 0i64..30), min..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prediction_invariants_hold(
        t in rows_strategy(20, 120),
        u in rows_strategy(20, 80),
        cut in 0i64..30,
        seed in any::<u64>(),
    ) {
        let c = catalog(&t, &u);
        let mut rng = Rng::new(seed);
        let units = calibrate(&HardwareProfile::pc1(), &CalibrationConfig::default(), &mut rng);
        let samples = c.draw_samples(0.3, 2, &mut rng);
        let spec = QuerySpec::scan("q", TableRef::new("t", Pred::lt("b", Value::Int(cut))))
            .with_joins(vec![JoinStep::new(TableRef::plain("u"), "a", "x")]);
        let plan = plan_query(&spec, &c);
        let predictor = Predictor::new(units, PredictorConfig::default());
        let p = predictor.predict(&plan, &c, &samples);

        // Mean positive (there is always constant scan cost), variance
        // non-negative, breakdown consistent.
        prop_assert!(p.mean_ms() > 0.0);
        prop_assert!(p.var() >= 0.0);
        prop_assert!((p.breakdown.total().max(0.0) - p.var()).abs() < 1e-9 * p.var().max(1.0));
        prop_assert!(p.breakdown.unit_variance >= 0.0);
        prop_assert!(p.breakdown.selectivity_exact >= -1e-9);
        prop_assert!(p.breakdown.covariance_bounds >= -1e-9);
        // Confidence intervals nest and are centered.
        let (l50, h50) = p.confidence_interval_ms(0.5);
        let (l95, h95) = p.confidence_interval_ms(0.95);
        prop_assert!(l95 <= l50 && h50 <= h95);
        prop_assert!(l50 <= p.mean_ms() && p.mean_ms() <= h50);
        prop_assert_eq!(p.sel_estimates.len(), plan.len());
    }

    #[test]
    fn ablations_never_increase_variance(
        t in rows_strategy(20, 100),
        u in rows_strategy(20, 60),
        seed in any::<u64>(),
    ) {
        let c = catalog(&t, &u);
        let mut rng = Rng::new(seed);
        let units = calibrate(&HardwareProfile::pc2(), &CalibrationConfig::default(), &mut rng);
        let samples = c.draw_samples(0.3, 2, &mut rng);
        let spec = QuerySpec::scan("q", TableRef::plain("t"))
            .with_joins(vec![JoinStep::new(TableRef::plain("u"), "a", "x")]);
        let plan = plan_query(&spec, &c);
        let var_of = |variant: Variant| {
            Predictor::new(units, PredictorConfig { variant, ..Default::default() })
                .predict(&plan, &c, &samples)
                .var()
        };
        let all = var_of(Variant::All);
        prop_assert!(var_of(Variant::NoCostUnitVariance) <= all + 1e-9);
        prop_assert!(var_of(Variant::NoSelectivityVariance) <= all + 1e-9);
        prop_assert!(var_of(Variant::NoCovariance) <= all + 1e-9);
    }
}
