//! The four predictor variants compared in §6.3.3 of the paper.

/// Which parts of the uncertainty model are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Variant {
    /// (V1) `All`: the complete framework.
    #[default]
    All,
    /// (V2) `No Var[c]`: cost-unit variances forced to zero.
    NoCostUnitVariance,
    /// (V3) `No Var[X]`: selectivity-estimate variances forced to zero.
    NoSelectivityVariance,
    /// (V4) `No Cov`: cross-operator selectivity covariances dropped.
    NoCovariance,
}

impl Variant {
    pub const ALL_VARIANTS: [Variant; 4] = [
        Variant::All,
        Variant::NoCostUnitVariance,
        Variant::NoSelectivityVariance,
        Variant::NoCovariance,
    ];

    /// Label as printed in the paper's Figure 8/10 legends.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::All => "All",
            Variant::NoCostUnitVariance => "No Var[c]",
            Variant::NoSelectivityVariance => "No Var[X]",
            Variant::NoCovariance => "No Cov",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(Variant::All.label(), "All");
        assert_eq!(Variant::NoCostUnitVariance.label(), "No Var[c]");
        assert_eq!(Variant::NoSelectivityVariance.label(), "No Var[X]");
        assert_eq!(Variant::NoCovariance.label(), "No Cov");
    }

    #[test]
    fn default_is_complete() {
        assert_eq!(Variant::default(), Variant::All);
    }
}
