//! The uncertainty-aware predictor (Algorithms 2 and 3).
//!
//! `Predictor::predict` runs the full pipeline of the paper:
//!
//! 1. execute the plan once over the sample tables, collecting provenance
//!    (§3.2.2);
//! 2. derive every operator's selectivity distribution `X ~ N(ρ_n, σ_n²)`
//!    (Algorithm 1);
//! 3. fit the logical cost functions on the `[μ ± 3σ]` grid (§4.2);
//! 4. combine with the calibrated cost-unit distributions into
//!    `t_q ~ N(E[t_q], Var[t_q])` (§5), computing `Var[t_q]` from exact
//!    same-operator moments plus root-to-leaf-path covariance bounds
//!    (Algorithm 3).

use crate::terms::{resolve_term, CovEnv, VarTerm};
use crate::variant::Variant;
use std::sync::Arc;
use uaq_cost::{
    fit_node, CostUnit, FitCache, FitConfig, FitSignature, FittedCost, NoFitCache, NoSelEstCache,
    NodeCostContext, NodeFits, SelEstCache, UnitDists,
};
use uaq_engine::{NodeId, Plan};
use uaq_selest::{AggCardinalitySource, SelEstimates};
use uaq_stats::Normal;
use uaq_storage::{Catalog, SampleCatalog};
use uaq_telemetry::span::{self, Stage};

/// Predictor configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct PredictorConfig {
    pub fit: FitConfig,
    pub variant: Variant,
    /// How aggregate output cardinalities are estimated (the paper uses the
    /// optimizer's estimate; GEE is its named extension, §3.2.2).
    pub agg_source: AggCardinalitySource,
}

/// Where the predicted variance came from (diagnostics; also the data behind
/// the ablation discussion in §6.3.3).
#[derive(Debug, Clone, Copy, Default)]
pub struct VarianceBreakdown {
    /// `Σ_c σ_c² (Σ_i E[f_ic])²` — cost-unit fluctuation against the mean
    /// workload (the dominant term; dropping it is "No Var[c]").
    pub unit_variance: f64,
    /// `Σ_{c,c'} μ_c μ_c' Σ_i Cov(f_ic, f_ic')` — same-operator selectivity
    /// uncertainty (exact moment algebra).
    pub selectivity_exact: f64,
    /// `Σ_{c,c'} μ_c μ_c' Σ_{i≠j} Cov(f_ic, f_jc')` — cross-operator
    /// covariance bounds along root-to-leaf paths (dropping it is "No Cov").
    pub covariance_bounds: f64,
    /// `Σ_c σ_c² Σ_{i,j} Cov(f_ic, f_jc)` — second-order interaction of unit
    /// and selectivity noise.
    pub interaction: f64,
}

impl VarianceBreakdown {
    pub fn total(&self) -> f64 {
        self.unit_variance + self.selectivity_exact + self.covariance_bounds + self.interaction
    }
}

/// A complete prediction: the distribution of likely running times.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// `t_q ~ N(E[t_q], Var[t_q])`, in milliseconds.
    distribution: Normal,
    pub breakdown: VarianceBreakdown,
    /// Per-operator selectivity estimates (inputs to Tables 6–9), shared
    /// with the selectivity-estimate cache when one is in play.
    pub sel_estimates: SelEstimates,
    /// Whether the sample-pass stage actually executed (`false` when a
    /// selectivity-estimate cache hit skipped it). A deterministic
    /// indicator: a `Prediction` carries **no wall-clock fields**, so two
    /// runs of the same inputs are bit-identical structs. Stage durations
    /// (the paper's §6.4 relative-overhead numerator included) are
    /// captured by `uaq_telemetry::span` when a recorder is active.
    pub sample_pass_ran: bool,
}

impl Prediction {
    /// Point estimate `E[t_q]` in milliseconds (what [48] would report).
    pub fn mean_ms(&self) -> f64 {
        self.distribution.mean()
    }

    /// `Var[t_q]` in ms².
    pub fn var(&self) -> f64 {
        self.distribution.var()
    }

    /// Standard deviation in milliseconds — the paper's uncertainty signal.
    pub fn std_dev_ms(&self) -> f64 {
        self.distribution.std_dev()
    }

    /// The full normal distribution of likely running times.
    pub fn distribution(&self) -> Normal {
        self.distribution
    }

    /// Central interval containing probability `p`: the "with probability
    /// 70%, the running time should be between 10s and 20s" statement of §1.
    ///
    /// `p` must lie in `[0, 1)`: `p = 0` collapses to the point interval
    /// at the mean, and **`p ≥ 1` panics** — the predicted distribution is
    /// a normal, whose 100% interval is unbounded (see
    /// [`uaq_stats::Normal::confidence_interval`]).
    pub fn confidence_interval_ms(&self, p: f64) -> (f64, f64) {
        self.distribution.confidence_interval(p)
    }

    /// `Pr(|T − E[t_q]| ≤ α·σ) = 2Φ(α) − 1` (§6.3).
    pub fn prob_within_alpha(&self, alpha: f64) -> f64 {
        Normal::prob_within_alpha_sigmas(alpha)
    }

    /// `Pr(T ≤ deadline_ms)` under the predicted distribution — the
    /// quantity deadline-aware admission control thresholds on (§1's "the
    /// DBA can ask how likely the query finishes within d").
    pub fn prob_completes_by(&self, deadline_ms: f64) -> f64 {
        self.distribution.cdf(deadline_ms)
    }

    /// A placeholder prediction for degraded serving tiers: a bare
    /// `N(mean_ms, var_ms2)` with no breakdown and no per-operator
    /// estimates. With `var_ms2 = 0` the distribution collapses to
    /// a point, so tail-probability admission on it degenerates to exactly
    /// the mean-only check `mean ≤ budget` (the CDF of a point mass is a
    /// step) — which is precisely what a mean-only fallback tier should
    /// decide. Both arguments must be finite and `var_ms2 ≥ 0`
    /// ([`Normal::new`] asserts this); callers with *no* usable estimate
    /// signal that out of band, not through a NaN mean.
    pub fn degraded(mean_ms: f64, var_ms2: f64) -> Self {
        Self {
            distribution: Normal::new(mean_ms, var_ms2),
            breakdown: VarianceBreakdown::default(),
            sel_estimates: SelEstimates::from_vec(Vec::new()),
            sample_pass_ran: false,
        }
    }
}

/// The uncertainty-aware query execution time predictor.
#[derive(Debug, Clone)]
pub struct Predictor {
    units: UnitDists,
    config: PredictorConfig,
}

impl Predictor {
    /// Creates a predictor from calibrated cost-unit distributions (§3.1).
    pub fn new(units: UnitDists, config: PredictorConfig) -> Self {
        let units = match config.variant {
            Variant::NoCostUnitVariance => units.without_variance(),
            _ => units,
        };
        Self { units, config }
    }

    pub fn variant(&self) -> Variant {
        self.config.variant
    }

    pub fn units(&self) -> &UnitDists {
        &self.units
    }

    /// Predicts the running-time distribution of `plan` (Algorithm 2).
    pub fn predict(&self, plan: &Plan, catalog: &Catalog, samples: &SampleCatalog) -> Prediction {
        self.predict_with_cache(plan, catalog, samples, &NoFitCache)
    }

    /// [`Predictor::predict`] with a fit cache threaded through the fitting
    /// stage (step 3). With [`NoFitCache`] this is byte-for-byte the
    /// original pipeline; with a real cache, same-shape plans reuse the
    /// per-node cost contexts and — when the selectivity distributions
    /// match bit-exactly (e.g. a repeated identical query) — the fitted
    /// cost functions themselves, skipping the oracle-probe grid fits that
    /// dominate short plans. Cached fits are keyed on everything they
    /// depend on ([`FitSignature`]), so cached and uncached predictions are
    /// bit-identical.
    pub fn predict_with_cache(
        &self,
        plan: &Plan,
        catalog: &Catalog,
        samples: &SampleCatalog,
        cache: &dyn FitCache,
    ) -> Prediction {
        self.predict_with_caches(plan, catalog, samples, cache, &NoSelEstCache)
    }

    /// The full serving pipeline: [`Predictor::predict_with_cache`] with a
    /// **selectivity-estimate cache** in front of the fit cache. On a hit —
    /// same plan shape, same predicate literals, same catalog, same sample
    /// set, same aggregate-cardinality source — steps 1–2 (the sample pass
    /// and Algorithm 1) are skipped entirely and the cached
    /// [`SelEstimates`] are re-fed to the pipeline bit-exactly; combined
    /// with a fit hit, a repeated query instance pays only the variance
    /// algebra. Estimates are pure functions of everything the key
    /// captures, so cached and uncached predictions are bit-identical at
    /// both cache levels (only the [`Prediction::sample_pass_ran`]
    /// indicator differs).
    pub fn predict_with_caches(
        &self,
        plan: &Plan,
        catalog: &Catalog,
        samples: &SampleCatalog,
        fit_cache: &dyn FitCache,
        sel_cache: &dyn SelEstCache,
    ) -> Prediction {
        // Shape key, shared by both cache levels: the catalog fingerprint
        // is mixed in so one cache instance can never serve entries built
        // against a different database (same-shape plans over different
        // catalogs differ in cardinalities, pages, and key densities).
        let shape = if fit_cache.enabled() || sel_cache.enabled() {
            Some(Self::shape_key(plan, catalog))
        } else {
            None
        };

        // 1.+2. One provenance-tracked pass over the sample tables plus the
        //       selectivity distributions per operator (Algorithm 1) —
        //       unless the estimate cache already holds this exact query
        //       instance over this exact sample set.
        let (raw_estimates, sample_pass_ran) = if sel_cache.enabled() {
            let key = Self::sel_key_for_shape(
                shape.as_deref().expect("shape computed when a cache is on"),
                plan,
                samples,
                self.config.agg_source,
            );
            match span::timed(Stage::SelCacheProbe, || sel_cache.get(&key)) {
                Some(estimates) => (estimates, false),
                None => {
                    let estimates = span::timed(Stage::SamplePass, || {
                        SelEstimates::compute(plan, samples, catalog, self.config.agg_source)
                    });
                    span::timed(Stage::SelCacheProbe, || sel_cache.put(&key, &estimates));
                    (estimates, true)
                }
            }
        } else {
            let estimates = span::timed(Stage::SamplePass, || {
                SelEstimates::compute(plan, samples, catalog, self.config.agg_source)
            });
            (estimates, true)
        };
        self.finish_prediction(
            plan,
            catalog,
            raw_estimates,
            sample_pass_ran,
            fit_cache,
            shape.as_deref(),
        )
    }

    /// Completes a prediction from already-obtained selectivity estimates
    /// (steps 3–4: fitting plus the variance algebra), **skipping the
    /// sample pass entirely**. This is the serving layer's degraded
    /// "cached estimates" tier: when the full pipeline fails or is over
    /// budget but the selectivity-estimate cache holds this exact query
    /// instance (probe with [`Self::sel_instance_key`]), the cached
    /// estimates still produce the full uncertainty distribution — fed
    /// through the identical code path, so the result is bit-identical to
    /// a [`Self::predict_with_caches`] sel-cache hit.
    pub fn predict_from_estimates(
        &self,
        plan: &Plan,
        catalog: &Catalog,
        estimates: SelEstimates,
        fit_cache: &dyn FitCache,
    ) -> Prediction {
        let shape = fit_cache.enabled().then(|| Self::shape_key(plan, catalog));
        self.finish_prediction(plan, catalog, estimates, false, fit_cache, shape.as_deref())
    }

    /// The cache key under which [`Self::predict_with_caches`] stores this
    /// exact query instance's selectivity estimates (plan shape, catalog
    /// fingerprint, sample-set fingerprint, aggregate-cardinality source,
    /// and predicate literals). Exposed so a caller holding only the
    /// [`SelEstCache`] can probe for reusable estimates without running
    /// any part of the pipeline.
    pub fn sel_instance_key(
        &self,
        plan: &Plan,
        catalog: &Catalog,
        samples: &SampleCatalog,
    ) -> String {
        Self::sel_key_for_shape(
            &Self::shape_key(plan, catalog),
            plan,
            samples,
            self.config.agg_source,
        )
    }

    /// The plan-shape key both cache levels group by (shape signature plus
    /// catalog fingerprint). Public so the observability layer can label
    /// per-shape metrics with the exact grouping the caches use.
    pub fn shape_key(plan: &Plan, catalog: &Catalog) -> String {
        format!(
            "{}#cat{:016x}",
            plan.shape_signature(),
            catalog.fingerprint()
        )
    }

    fn sel_key_for_shape(
        shape: &str,
        plan: &Plan,
        samples: &SampleCatalog,
        agg_source: AggCardinalitySource,
    ) -> String {
        format!(
            "{}#smp{:016x}#agg{}|{}",
            shape,
            samples.fingerprint(),
            match agg_source {
                AggCardinalitySource::Optimizer => "opt",
                AggCardinalitySource::Gee => "gee",
            },
            plan.literal_key()
        )
    }

    /// Steps 3–4 of the pipeline, shared verbatim by every entry point so
    /// cached, uncached, and degraded-tier predictions run the identical
    /// floating-point operation sequence (the bit-identity guarantee).
    fn finish_prediction(
        &self,
        plan: &Plan,
        catalog: &Catalog,
        raw_estimates: SelEstimates,
        sample_pass_ran: bool,
        fit_cache: &dyn FitCache,
        shape: Option<&str>,
    ) -> Prediction {
        // The "No Var[X]" ablation zeroes a deep copy: cached raw estimates
        // are shared with other predictions and must stay untouched.
        let estimates = if self.config.variant == Variant::NoSelectivityVariance {
            raw_estimates.with_zero_variance()
        } else {
            raw_estimates
        };

        let dists: Vec<Normal> = estimates.distributions();

        // 3. Fit the logical cost functions per (operator, unit),
        //    consulting the fit cache at both levels (contexts, fits).
        //    Span attribution: cache traffic → FitCacheProbe, the context
        //    build + grid fits + variance algebra → Fit.
        let fits = if fit_cache.enabled() {
            let shape = shape.expect("shape computed when a cache is on");
            let sig = FitSignature::new(self.config.fit.grid_w, &dists);
            match span::timed(Stage::FitCacheProbe, || fit_cache.get_fits(shape, &sig)) {
                Some(fits) => fits,
                None => {
                    let contexts = match span::timed(Stage::FitCacheProbe, || {
                        fit_cache.get_contexts(shape)
                    }) {
                        Some(c) => c,
                        None => {
                            let c = span::timed(Stage::Fit, || {
                                Arc::new(NodeCostContext::build_all(plan, catalog))
                            });
                            span::timed(Stage::FitCacheProbe, || fit_cache.put_contexts(shape, &c));
                            c
                        }
                    };
                    let f = span::timed(Stage::Fit, || {
                        Arc::new(self.fit_all(plan, &contexts, &dists))
                    });
                    span::timed(Stage::FitCacheProbe, || fit_cache.put_fits(shape, &sig, &f));
                    f
                }
            }
        } else {
            span::timed(Stage::Fit, || {
                let contexts = NodeCostContext::build_all(plan, catalog);
                Arc::new(self.fit_all(plan, &contexts, &dists))
            })
        };

        // 4. Combine (Algorithm 3).
        let env = CovEnv {
            plan,
            dists: &dists,
            estimates: &estimates,
            drop_cross_covariances: self.config.variant == Variant::NoCovariance,
        };
        let (mean, breakdown) = span::timed(Stage::Fit, || {
            self.mean_and_variance(plan, &fits, &dists, &env)
        });

        Prediction {
            distribution: Normal::new(mean, breakdown.total().max(0.0)),
            breakdown,
            sel_estimates: estimates,
            sample_pass_ran,
        }
    }

    /// Per-node input/own selectivity distributions.
    fn node_vars(plan: &Plan, dists: &[Normal], id: NodeId) -> (Normal, Normal, Normal) {
        let children = plan.op(id).children();
        let xl = children.first().map_or(Normal::point(0.0), |&c| dists[c]);
        let xr = children.get(1).map_or(Normal::point(0.0), |&c| dists[c]);
        (xl, xr, dists[id])
    }

    fn fit_all(&self, plan: &Plan, contexts: &[NodeCostContext], dists: &[Normal]) -> NodeFits {
        plan.node_ids()
            .map(|id| {
                let (xl, xr, own) = Self::node_vars(plan, dists, id);
                fit_node(&contexts[id], &xl, &xr, &own, &self.config.fit)
            })
            .collect()
    }

    /// `E[t_q]` and the `Var[t_q]` breakdown.
    ///
    /// With `t_q = Σ_i Σ_c f_ic·c`, cost units independent of selectivities
    /// and of each other (Assumption 1):
    ///
    /// `Var[t_q] = Σ_c σ_c²(Σ_i E[f_ic])²` (unit term)
    /// `        + Σ_{c,c'} μ_c μ_c' Σ_{i,j} Cov(f_ic, f_jc')` (selectivity)
    /// `        + Σ_c σ_c² Σ_{i,j} Cov(f_ic, f_jc)` (interaction),
    ///
    /// where same-operator covariances are exact and cross-operator ones are
    /// the Theorem 7–10 upper bounds.
    fn mean_and_variance(
        &self,
        plan: &Plan,
        fits: &[[Option<FittedCost>; 5]],
        dists: &[Normal],
        env: &CovEnv<'_>,
    ) -> (f64, VarianceBreakdown) {
        // Flatten the active (node, unit) cost functions with their term
        // decompositions and means.
        struct Piece {
            node: NodeId,
            unit: CostUnit,
            mean: f64,
            terms: Vec<(VarTerm, f64)>,
        }
        let mut pieces: Vec<Piece> = Vec::new();
        for id in plan.node_ids() {
            let (xl, xr, own) = Self::node_vars(plan, dists, id);
            for unit in CostUnit::ALL {
                if let Some(f) = &fits[id][unit.idx()] {
                    let (mean, _) = f.mean_var(&xl, &xr, &own);
                    let terms = f
                        .terms()
                        .into_iter()
                        .filter(|(_, coef)| *coef != 0.0)
                        .map(|(t, coef)| (resolve_term(plan, id, t), coef))
                        .collect();
                    pieces.push(Piece {
                        node: id,
                        unit,
                        mean,
                        terms,
                    });
                }
            }
        }

        // E[t_q] = Σ E[f_ic]·μ_c.
        let mean_ms: f64 = pieces
            .iter()
            .map(|p| p.mean * self.units[p.unit].mean())
            .sum();

        // Unit-variance term: σ_c²·(Σ_i E[f_ic])².
        let mut unit_totals = [0.0f64; CostUnit::COUNT];
        for p in &pieces {
            unit_totals[p.unit.idx()] += p.mean;
        }
        let unit_variance: f64 = CostUnit::ALL
            .iter()
            .map(|&u| self.units[u].var() * unit_totals[u.idx()] * unit_totals[u.idx()])
            .sum();

        // Selectivity and interaction terms over all piece pairs.
        let mut selectivity_exact = 0.0;
        let mut covariance_bounds = 0.0;
        let mut interaction = 0.0;
        for (a_idx, a) in pieces.iter().enumerate() {
            for b in &pieces[a_idx..] {
                // Σ over term pairs of Cov(Z, Z').
                let mut cov_ff = 0.0;
                for &(ta, ca) in &a.terms {
                    if ta == VarTerm::Const {
                        continue;
                    }
                    for &(tb, cb) in &b.terms {
                        if tb == VarTerm::Const {
                            continue;
                        }
                        cov_ff += ca * cb * env.cov(ta, tb);
                    }
                }
                if cov_ff == 0.0 {
                    continue;
                }
                // Count symmetric pairs twice; diagonal once.
                let pair_weight = if std::ptr::eq(a, b) { 1.0 } else { 2.0 };
                let mu_prod = self.units[a.unit].mean() * self.units[b.unit].mean();
                let sel_contrib = pair_weight * mu_prod * cov_ff;
                if a.node == b.node {
                    selectivity_exact += sel_contrib;
                } else {
                    covariance_bounds += sel_contrib;
                }
                if a.unit == b.unit {
                    interaction += pair_weight * self.units[a.unit].var() * cov_ff;
                }
            }
        }

        (
            mean_ms,
            VarianceBreakdown {
                unit_variance,
                selectivity_exact,
                covariance_bounds,
                interaction,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_cost::{simulate_actual_time, HardwareProfile, SimConfig};
    use uaq_engine::{execute_full, PlanBuilder, Pred};
    use uaq_stats::Rng;
    use uaq_storage::{Column, Schema, Table, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let s = Schema::new(vec![Column::int("a"), Column::int("b")]);
        let rows = (0..8000)
            .map(|i| vec![Value::Int((i % 50) as i64), Value::Int(i as i64)])
            .collect();
        c.add_table(Table::new("t", s, rows));
        let s2 = Schema::new(vec![Column::int("x"), Column::int("y")]);
        let rows2 = (0..4000)
            .map(|i| vec![Value::Int((i % 50) as i64), Value::Int(i as i64)])
            .collect();
        c.add_table(Table::new("u", s2, rows2));
        c
    }

    fn join_plan() -> Plan {
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::lt("b", Value::Int(4000)));
        let u = b.seq_scan("u", Pred::True);
        let j = b.hash_join(t, u, "a", "x");
        b.build(j)
    }

    fn calibrated_units(profile: &HardwareProfile, seed: u64) -> UnitDists {
        uaq_cost::calibrate(
            profile,
            &uaq_cost::CalibrationConfig::default(),
            &mut Rng::new(seed),
        )
    }

    #[test]
    fn prediction_mean_tracks_simulated_actual() {
        let c = catalog();
        let plan = join_plan();
        let profile = HardwareProfile::pc1();
        let units = calibrated_units(&profile, 50);
        let predictor = Predictor::new(units, PredictorConfig::default());
        let mut rng = Rng::new(51);
        let samples = c.draw_samples(0.1, 1, &mut rng);
        let prediction = predictor.predict(&plan, &c, &samples);

        let out = execute_full(&plan, &c);
        let ctxs = NodeCostContext::build_all(&plan, &c);
        let actual = simulate_actual_time(
            &plan,
            &ctxs,
            &out.traces,
            &profile,
            &SimConfig {
                runs: 200,
                model_error_sigma: 0.0,
                per_operator_unit_draws: false,
            },
            &mut rng,
        );
        let rel = (prediction.mean_ms() - actual.mean_ms).abs() / actual.mean_ms;
        assert!(
            rel < 0.15,
            "predicted {} vs actual {} (rel {rel})",
            prediction.mean_ms(),
            actual.mean_ms
        );
    }

    #[test]
    fn variance_is_positive_with_sensible_breakdown() {
        let c = catalog();
        let plan = join_plan();
        let units = calibrated_units(&HardwareProfile::pc1(), 52);
        let predictor = Predictor::new(units, PredictorConfig::default());
        let mut rng = Rng::new(53);
        let samples = c.draw_samples(0.05, 1, &mut rng);
        let p = predictor.predict(&plan, &c, &samples);
        assert!(p.var() > 0.0);
        assert!(p.breakdown.unit_variance > 0.0);
        assert!(p.breakdown.selectivity_exact >= 0.0);
        assert!(p.breakdown.covariance_bounds >= 0.0);
        assert!((p.breakdown.total() - p.var()).abs() < 1e-9);
        assert!(p.std_dev_ms() > 0.0);
    }

    #[test]
    fn smaller_samples_mean_more_uncertainty() {
        let c = catalog();
        let plan = join_plan();
        let units = calibrated_units(&HardwareProfile::pc1(), 54);
        let predictor = Predictor::new(units, PredictorConfig::default());
        let mut rng = Rng::new(55);
        let small = c.draw_samples(0.02, 1, &mut rng);
        let large = c.draw_samples(0.4, 1, &mut rng);
        let p_small = predictor.predict(&plan, &c, &small);
        let p_large = predictor.predict(&plan, &c, &large);
        // Selectivity-driven variance must shrink with more samples.
        let sel_small = p_small.breakdown.selectivity_exact + p_small.breakdown.covariance_bounds;
        let sel_large = p_large.breakdown.selectivity_exact + p_large.breakdown.covariance_bounds;
        assert!(
            sel_small > sel_large,
            "sel var small-sample {sel_small} vs large-sample {sel_large}"
        );
    }

    #[test]
    fn variants_reduce_variance() {
        let c = catalog();
        let plan = join_plan();
        let units = calibrated_units(&HardwareProfile::pc1(), 56);
        let mut rng = Rng::new(57);
        let samples = c.draw_samples(0.05, 1, &mut rng);
        let var_of = |variant: Variant| {
            let p = Predictor::new(
                units,
                PredictorConfig {
                    variant,
                    ..Default::default()
                },
            )
            .predict(&plan, &c, &samples);
            p.var()
        };
        let all = var_of(Variant::All);
        let no_c = var_of(Variant::NoCostUnitVariance);
        let no_x = var_of(Variant::NoSelectivityVariance);
        let no_cov = var_of(Variant::NoCovariance);
        assert!(
            no_c < all,
            "No Var[c] must reduce variance: {no_c} vs {all}"
        );
        assert!(
            no_x < all,
            "No Var[X] must reduce variance: {no_x} vs {all}"
        );
        assert!(no_cov <= all, "No Cov must not increase variance");
        assert!(
            no_cov >= no_x,
            "No Cov keeps same-operator selectivity variance"
        );
    }

    #[test]
    fn no_var_x_keeps_unit_variance_only_for_sel_terms() {
        let c = catalog();
        let plan = join_plan();
        let units = calibrated_units(&HardwareProfile::pc2(), 58);
        let mut rng = Rng::new(59);
        let samples = c.draw_samples(0.05, 1, &mut rng);
        let p = Predictor::new(
            units,
            PredictorConfig {
                variant: Variant::NoSelectivityVariance,
                ..Default::default()
            },
        )
        .predict(&plan, &c, &samples);
        assert!(p.breakdown.unit_variance > 0.0);
        assert!(p.breakdown.selectivity_exact.abs() < 1e-12);
        assert!(p.breakdown.covariance_bounds.abs() < 1e-12);
        assert!(p.breakdown.interaction.abs() < 1e-12);
    }

    #[test]
    fn confidence_interval_is_centered_and_ordered() {
        let c = catalog();
        let plan = join_plan();
        let units = calibrated_units(&HardwareProfile::pc1(), 60);
        let predictor = Predictor::new(units, PredictorConfig::default());
        let mut rng = Rng::new(61);
        let samples = c.draw_samples(0.1, 1, &mut rng);
        let p = predictor.predict(&plan, &c, &samples);
        let (lo70, hi70) = p.confidence_interval_ms(0.70);
        let (lo95, hi95) = p.confidence_interval_ms(0.95);
        assert!(lo95 < lo70 && lo70 < p.mean_ms() && p.mean_ms() < hi70 && hi70 < hi95);
        assert!((p.prob_within_alpha(1.0) - 0.6827).abs() < 1e-3);
    }

    #[test]
    fn predict_from_estimates_is_bit_identical_to_the_full_pipeline() {
        let c = catalog();
        let plan = join_plan();
        let units = calibrated_units(&HardwareProfile::pc1(), 64);
        let predictor = Predictor::new(units, PredictorConfig::default());
        let mut rng = Rng::new(65);
        let samples = c.draw_samples(0.05, 1, &mut rng);
        let full = predictor.predict(&plan, &c, &samples);
        let estimates =
            SelEstimates::compute(&plan, &samples, &c, PredictorConfig::default().agg_source);
        let from_est = predictor.predict_from_estimates(&plan, &c, estimates, &NoFitCache);
        assert_eq!(full.mean_ms().to_bits(), from_est.mean_ms().to_bits());
        assert_eq!(full.var().to_bits(), from_est.var().to_bits());
        assert!(
            !from_est.sample_pass_ran,
            "the skipped stage reports that it was skipped"
        );
        assert!(full.sample_pass_ran);
    }

    #[test]
    fn degraded_prediction_is_a_point_mass_with_step_cdf() {
        let p = Prediction::degraded(10.0, 0.0);
        assert_eq!(p.mean_ms(), 10.0);
        assert_eq!(p.var(), 0.0);
        // Point mass ⇒ tail-probability admission degenerates to the
        // mean-only check: all-or-nothing around the mean.
        assert_eq!(p.prob_completes_by(9.9), 0.0);
        assert_eq!(p.prob_completes_by(10.0), 1.0);
        assert!(p.sel_estimates.is_empty());
    }

    #[test]
    fn span_recording_captures_stages_without_perturbing_the_prediction() {
        let c = catalog();
        let plan = join_plan();
        let units = calibrated_units(&HardwareProfile::pc1(), 62);
        let predictor = Predictor::new(units, PredictorConfig::default());
        let mut rng = Rng::new(63);
        let samples = c.draw_samples(0.05, 1, &mut rng);

        // Baseline: no recorder active.
        let plain = predictor.predict(&plan, &c, &samples);
        assert_eq!(plain.sel_estimates.len(), plan.len());

        // Same inputs with a recorder active: the prediction is
        // bit-identical (the span layer only observes; it never feeds
        // wall-clock values back into the result), and the pipeline
        // stages show up in the timings.
        let span = uaq_telemetry::span::SpanRecorder::begin();
        let recorded = predictor.predict(&plan, &c, &samples);
        let timings = span.finish();
        assert_eq!(plain.mean_ms().to_bits(), recorded.mean_ms().to_bits());
        assert_eq!(plain.var().to_bits(), recorded.var().to_bits());
        assert_eq!(plain.sample_pass_ran, recorded.sample_pass_ran);
        assert!(timings.get(Stage::SamplePass) > 0.0);
        assert!(timings.get(Stage::Fit) > 0.0);
        // The engine's executor stage nests inside the sample pass.
        assert!(timings.get(Stage::Exec) > 0.0);
        assert!(timings.get(Stage::Exec) <= timings.get(Stage::SamplePass));
        // No caches in play: the probe stages never ran.
        assert_eq!(timings.get(Stage::SelCacheProbe), 0.0);
        assert_eq!(timings.get(Stage::FitCacheProbe), 0.0);
    }

    /// The satellite-1 pin: a `Prediction` must carry no wall-clock
    /// fields, so two runs of the identical inputs are bit-identical
    /// structs — not just close, *identical* — field by field.
    #[test]
    fn predictions_are_bit_deterministic_across_runs() {
        let c = catalog();
        let plan = join_plan();
        let units = calibrated_units(&HardwareProfile::pc1(), 66);
        let predictor = Predictor::new(units, PredictorConfig::default());
        let mut rng = Rng::new(67);
        let samples = c.draw_samples(0.05, 1, &mut rng);
        let a = predictor.predict(&plan, &c, &samples);
        let b = predictor.predict(&plan, &c, &samples);
        assert_eq!(a.mean_ms().to_bits(), b.mean_ms().to_bits());
        assert_eq!(a.var().to_bits(), b.var().to_bits());
        assert_eq!(
            a.breakdown.unit_variance.to_bits(),
            b.breakdown.unit_variance.to_bits()
        );
        assert_eq!(
            a.breakdown.selectivity_exact.to_bits(),
            b.breakdown.selectivity_exact.to_bits()
        );
        assert_eq!(
            a.breakdown.covariance_bounds.to_bits(),
            b.breakdown.covariance_bounds.to_bits()
        );
        assert_eq!(
            a.breakdown.interaction.to_bits(),
            b.breakdown.interaction.to_bits()
        );
        assert_eq!(a.sample_pass_ran, b.sample_pass_ran);
        assert_eq!(
            a.sel_estimates.canonical_bytes(),
            b.sel_estimates.canonical_bytes()
        );
    }
}
