//! Covariance algebra over selectivity monomials (§5.3).
//!
//! A fitted cost function decomposes into monomials in node selectivities:
//! `1`, `X_u`, `X_u²`, `X_u X_v`. The variance computation needs
//! `Cov(Z, Z')` for every monomial pair across every operator pair. Three
//! regimes (§5.3.1–5.3.2):
//!
//! * **same variable(s)** — exact, via normal moment algebra (Table 3);
//! * **independent variables** — zero (Lemma 1–3: estimates are independent
//!   unless one operator descends from the other);
//! * **dependent, different variables** — upper bounds: B1 (Theorem 7) for
//!   linear×linear, the Theorem 9/10 envelopes for squares, and a
//!   Cauchy–Schwarz fallback with exactly computable variances for the
//!   product terms the paper does not spell out.

use uaq_cost::SelTerm;
use uaq_engine::{NodeId, Op, Plan};
use uaq_selest::{
    cov_bound_square_linear, cov_bound_squares, cov_bounds, shared_leaves, SelEstimate,
};
use uaq_stats::normal::product;
use uaq_stats::Normal;

/// A selectivity monomial bound to concrete plan nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarTerm {
    /// Constant 1.
    Const,
    /// `X_u`.
    Lin(NodeId),
    /// `X_u²`.
    Sq(NodeId),
    /// `X_u · X_v` with `u ≠ v` (children of one binary operator; assumed
    /// independent by Lemma 2 + the multi-sample-table trick).
    Prod(NodeId, NodeId),
}

/// Resolves a form-relative [`SelTerm`] of operator `id` into plan nodes.
pub fn resolve_term(plan: &Plan, id: NodeId, term: SelTerm) -> VarTerm {
    let children = plan.op(id).children();
    match term {
        SelTerm::One => VarTerm::Const,
        SelTerm::Own => VarTerm::Lin(id),
        SelTerm::Left => VarTerm::Lin(children[0]),
        SelTerm::LeftSq => VarTerm::Sq(children[0]),
        SelTerm::Right => VarTerm::Lin(children[1]),
        SelTerm::LeftRight => VarTerm::Prod(children[0], children[1]),
    }
}

/// Shared read-only context for the algebra.
pub struct CovEnv<'a> {
    pub plan: &'a Plan,
    /// Per-node selectivity distributions `X ~ N(ρ_n, σ_n²)`.
    pub dists: &'a [Normal],
    /// Per-node raw estimates (variance components for the bounds).
    pub estimates: &'a [SelEstimate],
    /// When true, cross-variable covariance *bounds* are skipped (the
    /// paper's "No Cov" ablation); exact same-variable moments are kept.
    pub drop_cross_covariances: bool,
}

impl<'a> CovEnv<'a> {
    fn dependent(&self, u: NodeId, w: NodeId) -> bool {
        u == w || self.plan.is_descendant(u, w) || self.plan.is_descendant(w, u)
    }

    /// Exact variance of a monomial.
    pub fn term_var(&self, t: VarTerm) -> f64 {
        match t {
            VarTerm::Const => 0.0,
            VarTerm::Lin(u) => self.dists[u].var(),
            VarTerm::Sq(u) => self.dists[u].var_of_square(),
            VarTerm::Prod(u, v) => product::var(&self.dists[u], &self.dists[v]),
        }
    }

    /// Exact mean of a monomial.
    pub fn term_mean(&self, t: VarTerm) -> f64 {
        match t {
            VarTerm::Const => 1.0,
            VarTerm::Lin(u) => self.dists[u].mean(),
            VarTerm::Sq(u) => self.dists[u].raw_moment(2),
            VarTerm::Prod(u, v) => self.dists[u].mean() * self.dists[v].mean(),
        }
    }

    /// B1 bound (Theorem 7) for `|Cov(X_u, X_w)|`, `u ≠ w` dependent.
    fn bound_lin_lin(&self, u: NodeId, w: NodeId) -> f64 {
        let Some(shared) = shared_leaves(self.plan, u, w) else {
            return 0.0;
        };
        // Orient: shared_leaves treats the first descendant argument.
        let (desc, anc) = if self.plan.is_descendant(u, w) {
            (u, w)
        } else {
            (w, u)
        };
        let b = cov_bounds(&self.estimates[desc], &self.estimates[anc], &shared);
        b.tightest()
    }

    /// Theorem 10 bound for `|Cov(X_u², X_w)|`, dependent `u ≠ w`, capped by
    /// Cauchy–Schwarz with exact variances.
    fn bound_sq_lin(&self, u: NodeId, w: NodeId) -> f64 {
        let Some(shared) = shared_leaves(self.plan, u, w) else {
            return 0.0;
        };
        let n = min_n(&self.estimates[u], &self.estimates[w]);
        let t10 = cov_bound_square_linear(&self.estimates[u], &self.estimates[w], shared.m, n);
        let cs = (self.term_var(VarTerm::Sq(u)) * self.term_var(VarTerm::Lin(w))).sqrt();
        t10.min(cs)
    }

    /// Theorem 9 bound for `|Cov(X_u², X_w²)|`, capped by Cauchy–Schwarz.
    fn bound_sq_sq(&self, u: NodeId, w: NodeId) -> f64 {
        let Some(shared) = shared_leaves(self.plan, u, w) else {
            return 0.0;
        };
        let (desc, anc) = if self.plan.is_descendant(u, w) {
            (u, w)
        } else {
            (w, u)
        };
        let t9 = cov_bound_squares(&self.estimates[desc], &self.estimates[anc], &shared);
        let cs = (self.term_var(VarTerm::Sq(u)) * self.term_var(VarTerm::Sq(w))).sqrt();
        t9.min(cs)
    }

    /// Cauchy–Schwarz fallback with exact term variances.
    fn cauchy_schwarz(&self, a: VarTerm, b: VarTerm) -> f64 {
        (self.term_var(a) * self.term_var(b)).sqrt()
    }

    /// `Cov(Z, Z')` for two bound monomials: exact where the variables
    /// coincide, zero where independent, an upper bound otherwise (the
    /// bound is returned as a non-negative value — shared-sample
    /// correlations are non-negative, and Algorithm 3 adds the bounds).
    pub fn cov(&self, a: VarTerm, b: VarTerm) -> f64 {
        use VarTerm::*;
        match (a, b) {
            (Const, _) | (_, Const) => 0.0,

            (Lin(u), Lin(w)) => {
                if u == w {
                    self.dists[u].var()
                } else {
                    self.cross(u, w, |e| e.bound_lin_lin(u, w))
                }
            }

            (Lin(u), Sq(w)) | (Sq(w), Lin(u)) => {
                if u == w {
                    self.dists[u].cov_x_x2()
                } else {
                    self.cross(u, w, |e| e.bound_sq_lin(w, u))
                }
            }

            (Sq(u), Sq(w)) => {
                if u == w {
                    self.dists[u].var_of_square()
                } else {
                    self.cross(u, w, |e| e.bound_sq_sq(u, w))
                }
            }

            (Prod(u, v), Lin(w)) | (Lin(w), Prod(u, v)) => {
                if w == u {
                    product::cov_with_left(&self.dists[u], &self.dists[v])
                } else if w == v {
                    product::cov_with_right(&self.dists[u], &self.dists[v])
                } else {
                    match (self.dependent(u, w), self.dependent(v, w)) {
                        (false, false) => 0.0,
                        (true, false) => {
                            self.dists[v].mean().abs() * self.cross(u, w, |e| e.bound_lin_lin(u, w))
                        }
                        (false, true) => {
                            self.dists[u].mean().abs() * self.cross(v, w, |e| e.bound_lin_lin(v, w))
                        }
                        (true, true) => self.gated(self.cauchy_schwarz(Prod(u, v), Lin(w))),
                    }
                }
            }

            (Prod(u, v), Sq(w)) | (Sq(w), Prod(u, v)) => {
                if w == u {
                    // Cov(X²·? , X Y) with Y ⊥ X: μ_v · Cov(X², X).
                    self.dists[v].mean() * self.dists[u].cov_x_x2()
                } else if w == v {
                    self.dists[u].mean() * self.dists[v].cov_x_x2()
                } else {
                    match (self.dependent(u, w), self.dependent(v, w)) {
                        (false, false) => 0.0,
                        (true, false) => {
                            self.dists[v].mean().abs() * self.cross(u, w, |e| e.bound_sq_lin(w, u))
                        }
                        (false, true) => {
                            self.dists[u].mean().abs() * self.cross(v, w, |e| e.bound_sq_lin(w, v))
                        }
                        (true, true) => self.gated(self.cauchy_schwarz(Prod(u, v), Sq(w))),
                    }
                }
            }

            (Prod(u, v), Prod(w, z)) => {
                if (u == w && v == z) || (u == z && v == w) {
                    product::var(&self.dists[u], &self.dists[v])
                } else if u == w && !self.dependent(v, z) {
                    // Cov(X A, X B) with A ⊥ B ⊥ X: μ_A μ_B σ_X².
                    self.dists[v].mean() * self.dists[z].mean() * self.dists[u].var()
                } else if u == z && !self.dependent(v, w) {
                    self.dists[v].mean() * self.dists[w].mean() * self.dists[u].var()
                } else if v == w && !self.dependent(u, z) {
                    self.dists[u].mean() * self.dists[z].mean() * self.dists[v].var()
                } else if v == z && !self.dependent(u, w) {
                    self.dists[u].mean() * self.dists[w].mean() * self.dists[v].var()
                } else {
                    let any_dep = self.dependent(u, w)
                        || self.dependent(u, z)
                        || self.dependent(v, w)
                        || self.dependent(v, z);
                    if any_dep {
                        self.gated(self.cauchy_schwarz(a, b))
                    } else {
                        0.0
                    }
                }
            }
        }
    }

    /// Applies the "No Cov" ablation gate to a cross-variable bound.
    fn cross(&self, _u: NodeId, _w: NodeId, f: impl Fn(&Self) -> f64) -> f64 {
        if self.drop_cross_covariances {
            0.0
        } else {
            f(self)
        }
    }

    fn gated(&self, v: f64) -> f64 {
        if self.drop_cross_covariances {
            0.0
        } else {
            v
        }
    }
}

fn min_n(a: &SelEstimate, b: &SelEstimate) -> usize {
    a.leaf_sample_sizes
        .iter()
        .chain(b.leaf_sample_sizes.iter())
        .copied()
        .min()
        .unwrap_or(0)
}

/// Sanity helper: does a plan node have children (used in tests).
pub fn is_leaf(plan: &Plan, id: NodeId) -> bool {
    matches!(plan.op(id), Op::SeqScan { .. } | Op::IndexScan { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_engine::{execute_on_samples, PlanBuilder, Pred};
    use uaq_selest::estimate_selectivities;
    use uaq_stats::Rng;
    use uaq_storage::{Catalog, Column, Schema, Table, Value};

    fn fixture() -> (Catalog, Plan, Vec<SelEstimate>, Vec<Normal>) {
        let mut c = Catalog::new();
        for (name, key, rows) in [("t", "a", 1500usize), ("u", "x", 900), ("v", "p", 600)] {
            let s = Schema::new(vec![Column::int(key), Column::int(format!("{name}_id"))]);
            let data = (0..rows)
                .map(|i| vec![Value::Int((i % 30) as i64), Value::Int(i as i64)])
                .collect();
            c.add_table(Table::new(name, s, data));
        }
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::lt("t_id", Value::Int(1000)));
        let u = b.seq_scan("u", Pred::True);
        let j1 = b.hash_join(t, u, "a", "x");
        let v = b.seq_scan("v", Pred::True);
        let j2 = b.hash_join(j1, v, "a", "p");
        let plan = b.build(j2);
        let mut rng = Rng::new(33);
        let samples = c.draw_samples(0.1, 1, &mut rng);
        let out = execute_on_samples(&plan, &samples);
        let estimates = estimate_selectivities(&plan, &out, &samples, &c);
        let dists: Vec<Normal> = estimates.iter().map(|e| e.distribution()).collect();
        (c, plan, estimates, dists)
    }

    #[test]
    fn resolve_terms_to_plan_nodes() {
        let (_c, plan, _e, _d) = fixture();
        // j2 = node 4, children j1 = 2 and v = 3.
        assert_eq!(resolve_term(&plan, 4, SelTerm::Left), VarTerm::Lin(2));
        assert_eq!(resolve_term(&plan, 4, SelTerm::Right), VarTerm::Lin(3));
        assert_eq!(
            resolve_term(&plan, 4, SelTerm::LeftRight),
            VarTerm::Prod(2, 3)
        );
        assert_eq!(resolve_term(&plan, 0, SelTerm::Own), VarTerm::Lin(0));
        assert_eq!(resolve_term(&plan, 4, SelTerm::One), VarTerm::Const);
    }

    #[test]
    fn same_variable_moments_are_exact() {
        let (_c, plan, estimates, dists) = fixture();
        let env = CovEnv {
            plan: &plan,
            dists: &dists,
            estimates: &estimates,
            drop_cross_covariances: false,
        };
        let x = dists[0];
        assert_eq!(env.cov(VarTerm::Lin(0), VarTerm::Lin(0)), x.var());
        assert_eq!(env.cov(VarTerm::Lin(0), VarTerm::Sq(0)), x.cov_x_x2());
        assert_eq!(env.cov(VarTerm::Sq(0), VarTerm::Sq(0)), x.var_of_square());
    }

    #[test]
    fn independent_nodes_have_zero_cov() {
        let (_c, plan, estimates, dists) = fixture();
        let env = CovEnv {
            plan: &plan,
            dists: &dists,
            estimates: &estimates,
            drop_cross_covariances: false,
        };
        // Scans of t (0) and u (1): siblings, Lemma 2.
        assert_eq!(env.cov(VarTerm::Lin(0), VarTerm::Lin(1)), 0.0);
        // j1 (2) and v (3): Example 5's Cov(X4, X3) = 0.
        assert_eq!(env.cov(VarTerm::Lin(2), VarTerm::Lin(3)), 0.0);
        assert_eq!(env.cov(VarTerm::Sq(0), VarTerm::Lin(1)), 0.0);
    }

    #[test]
    fn dependent_nodes_get_positive_bounds() {
        let (_c, plan, estimates, dists) = fixture();
        let env = CovEnv {
            plan: &plan,
            dists: &dists,
            estimates: &estimates,
            drop_cross_covariances: false,
        };
        // Scan t (0) is a descendant of j1 (2): Example 5's Cov(X1, X4).
        let c01 = env.cov(VarTerm::Lin(0), VarTerm::Lin(2));
        assert!(c01 > 0.0, "expected positive bound");
        // Bounded by Cauchy–Schwarz.
        assert!(c01 <= (dists[0].var() * dists[2].var()).sqrt() + 1e-15);
        // Symmetric.
        assert_eq!(c01, env.cov(VarTerm::Lin(2), VarTerm::Lin(0)));
    }

    #[test]
    fn product_term_reductions() {
        let (_c, plan, estimates, dists) = fixture();
        let env = CovEnv {
            plan: &plan,
            dists: &dists,
            estimates: &estimates,
            drop_cross_covariances: false,
        };
        // Prod(2, 3) vs Lin(2): exact μ_3 σ_2².
        let got = env.cov(VarTerm::Prod(2, 3), VarTerm::Lin(2));
        let expect = dists[3].mean() * dists[2].var();
        assert!((got - expect).abs() < 1e-15);
        // Prod(2, 3) vs Lin(0): 0 descends from 2 only → μ_3·B1(0,2).
        let got2 = env.cov(VarTerm::Prod(2, 3), VarTerm::Lin(0));
        let b1 = env.cov(VarTerm::Lin(0), VarTerm::Lin(2));
        assert!((got2 - dists[3].mean() * b1).abs() < 1e-12);
        // Same product twice: exact normal-product variance.
        let vp = env.cov(VarTerm::Prod(2, 3), VarTerm::Prod(2, 3));
        assert!((vp - env.term_var(VarTerm::Prod(2, 3))).abs() < 1e-15);
    }

    #[test]
    fn no_cov_gate_zeroes_cross_bounds_only() {
        let (_c, plan, estimates, dists) = fixture();
        let env = CovEnv {
            plan: &plan,
            dists: &dists,
            estimates: &estimates,
            drop_cross_covariances: true,
        };
        assert_eq!(env.cov(VarTerm::Lin(0), VarTerm::Lin(2)), 0.0);
        // Same-variable moments survive the gate.
        assert!(env.cov(VarTerm::Lin(0), VarTerm::Lin(0)) > 0.0);
        assert_eq!(
            env.cov(VarTerm::Prod(2, 3), VarTerm::Lin(2)),
            dists[3].mean() * dists[2].var()
        );
    }

    #[test]
    fn term_means_and_vars() {
        let (_c, plan, estimates, dists) = fixture();
        let env = CovEnv {
            plan: &plan,
            dists: &dists,
            estimates: &estimates,
            drop_cross_covariances: false,
        };
        assert_eq!(env.term_mean(VarTerm::Const), 1.0);
        assert_eq!(env.term_var(VarTerm::Const), 0.0);
        assert_eq!(env.term_mean(VarTerm::Lin(0)), dists[0].mean());
        assert_eq!(env.term_mean(VarTerm::Sq(0)), dists[0].raw_moment(2));
        assert_eq!(
            env.term_mean(VarTerm::Prod(0, 1)),
            dists[0].mean() * dists[1].mean()
        );
    }

    #[test]
    fn leaf_detection() {
        let (_c, plan, _e, _d) = fixture();
        assert!(is_leaf(&plan, 0));
        assert!(!is_leaf(&plan, 2));
    }
}
