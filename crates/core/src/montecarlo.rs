//! The one-stage Monte-Carlo alternative (Appendix B of the paper).
//!
//! Instead of the analytic two-stage framework (estimate input
//! distributions, then propagate them through the cost functions), one can
//! "keep running the query plan over different sample tables and observe
//! the joint distribution of the selectivities ... plug in each observed
//! selectivity vector X to the cost formulas and compute the running
//! times" — building the distribution of `t_q` empirically.
//!
//! The paper rejects this as the primary method because "we need the same
//! number of sample runs as the observations we need to build the
//! histogram" (prohibitive overhead) but calls it of theoretic interest; it
//! is the natural cross-check for the analytic `N(E[t_q], Var[t_q])`, and
//! it makes the §6.3.2 subtlety concrete: *each* sample set yields its own
//! distribution (`D_1` vs `D_2` in Figure 7), so there is no single "true"
//! predicted distribution to converge to.

use crate::predictor::Predictor;
use uaq_cost::{CostUnit, NodeCostContext};
use uaq_engine::{execute_on_samples, Plan};
use uaq_selest::estimate_selectivities;
use uaq_stats::{mean, sample_variance, Normal, Rng};
use uaq_storage::Catalog;

/// An empirical distribution of predicted running times.
#[derive(Debug, Clone)]
pub struct EmpiricalPrediction {
    /// One point estimate per sample-set draw (ms), in draw order. Private
    /// so the sorted cache below cannot go stale; read via
    /// [`Self::point_estimates_ms`].
    point_estimates_ms: Vec<f64>,
    /// The same estimates sorted ascending — the order statistics, computed
    /// once at construction so `quantile` is an O(1) lookup instead of a
    /// clone-and-sort per call.
    sorted_ms: Vec<f64>,
}

impl EmpiricalPrediction {
    /// Wraps raw per-draw point estimates, sorting the order statistics
    /// once.
    pub fn new(point_estimates_ms: Vec<f64>) -> Self {
        let mut sorted_ms = point_estimates_ms.clone();
        sorted_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Self {
            point_estimates_ms,
            sorted_ms,
        }
    }

    /// The per-draw point estimates, in draw order.
    pub fn point_estimates_ms(&self) -> &[f64] {
        &self.point_estimates_ms
    }

    pub fn mean_ms(&self) -> f64 {
        mean(&self.point_estimates_ms)
    }

    pub fn var(&self) -> f64 {
        sample_variance(&self.point_estimates_ms)
    }

    pub fn std_dev_ms(&self) -> f64 {
        self.var().sqrt()
    }

    /// Normal fitted to the empirical spread.
    pub fn fitted_normal(&self) -> Normal {
        Normal::new(self.mean_ms(), self.var())
    }

    /// Empirical quantile (linear interpolation between the pre-sorted
    /// order statistics).
    ///
    /// Unlike [`Normal::quantile`], `p` spans the **closed** interval
    /// `[0, 1]`: the order statistics have finite extremes, so `p = 0`
    /// yields the smallest observed estimate and `p = 1` the largest.
    /// Out-of-range `p` panics.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        let xs = &self.sorted_ms;
        let pos = p * (xs.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        xs[lo] * (1.0 - frac) + xs[hi] * frac
    }
}

/// Runs the one-stage Monte-Carlo alternative: draws `runs` independent
/// sample sets at `sampling_ratio`, computes the *point* running-time
/// estimate for each (mean selectivities through the fitted cost functions
/// at calibrated mean unit costs), and returns the empirical distribution
/// of those point estimates.
///
/// This captures the selectivity-estimation component of the uncertainty —
/// the part that varies with the sample — but not the cost-unit
/// fluctuation, which is why the analytic variance is the larger of the
/// two (the predictor adds `Var[c]` on top).
pub fn monte_carlo_prediction(
    predictor: &Predictor,
    plan: &Plan,
    catalog: &Catalog,
    sampling_ratio: f64,
    runs: usize,
    rng: &mut Rng,
) -> EmpiricalPrediction {
    uaq_telemetry::span::timed(uaq_telemetry::span::Stage::MonteCarlo, || {
        monte_carlo_inner(predictor, plan, catalog, sampling_ratio, runs, rng)
    })
}

fn monte_carlo_inner(
    predictor: &Predictor,
    plan: &Plan,
    catalog: &Catalog,
    sampling_ratio: f64,
    runs: usize,
    rng: &mut Rng,
) -> EmpiricalPrediction {
    assert!(runs >= 2, "need at least two sample draws");
    let contexts = NodeCostContext::build_all(plan, catalog);
    let estimate_one = |samples: &uaq_storage::SampleCatalog| -> f64 {
        let outcome = execute_on_samples(plan, samples);
        let estimates = estimate_selectivities(plan, &outcome, samples, catalog);
        // Point estimate: plug the observed selectivity vector into the
        // oracle cost model at calibrated mean unit costs (Appendix B's
        // "plug in each observed selectivity vector X").
        plan.node_ids()
            .map(|id| {
                let children = plan.op(id).children();
                let xl = children.first().map_or(0.0, |&c| estimates[c].rho);
                let xr = children.get(1).map_or(0.0, |&c| estimates[c].rho);
                let counts = contexts[id].counts(xl, xr, estimates[id].rho);
                CostUnit::ALL
                    .iter()
                    .map(|&u| counts[u] * predictor.units()[u].mean())
                    .sum::<f64>()
            })
            .sum()
    };
    // Sample sets are drawn from the caller's RNG in run order — the random
    // stream is identical with or without the `parallel` feature — but only
    // one chunk of them is alive at a time: each chunk is drawn
    // sequentially, then its deterministic execute + estimate + cost work
    // fans out in parallel. The chunk size bounds peak memory at a few
    // sample catalogs per worker rather than `runs`-many.
    let chunk = if uaq_stats::parallel_enabled() {
        std::thread::available_parallelism()
            .map(std::num::NonZero::get)
            .unwrap_or(1)
            .saturating_mul(2)
            .max(1)
    } else {
        1
    };
    let mut point_estimates_ms = Vec::with_capacity(runs);
    let mut remaining = runs;
    while remaining > 0 {
        let take = remaining.min(chunk);
        let sample_sets: Vec<_> = (0..take)
            .map(|_| catalog.draw_samples(sampling_ratio, 2, rng))
            .collect();
        point_estimates_ms.extend(uaq_stats::parallel_map(&sample_sets, |s| estimate_one(s)));
        remaining -= take;
    }
    EmpiricalPrediction::new(point_estimates_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::PredictorConfig;
    use uaq_cost::{calibrate, CalibrationConfig, HardwareProfile};
    use uaq_engine::{plan_query, JoinStep, Pred, QuerySpec, TableRef};
    use uaq_storage::{Column, Schema, Table, Value};

    fn setup() -> (Catalog, Plan, Predictor) {
        let mut c = Catalog::new();
        let s = Schema::new(vec![Column::int("a"), Column::int("b")]);
        let rows = (0..4000)
            .map(|i| vec![Value::Int((i % 40) as i64), Value::Int(i as i64)])
            .collect();
        c.add_table(Table::new("t", s, rows));
        let s2 = Schema::new(vec![Column::int("x"), Column::int("y")]);
        let rows2 = (0..2000)
            .map(|i| vec![Value::Int((i % 40) as i64), Value::Int(i as i64)])
            .collect();
        c.add_table(Table::new("u", s2, rows2));
        let spec = QuerySpec::scan("q", TableRef::new("t", Pred::lt("b", Value::Int(2000))))
            .with_joins(vec![JoinStep::new(TableRef::plain("u"), "a", "x")]);
        let plan = plan_query(&spec, &c);
        let mut rng = Rng::new(5);
        let units = calibrate(
            &HardwareProfile::pc1(),
            &CalibrationConfig::default(),
            &mut rng,
        );
        let predictor = Predictor::new(units, PredictorConfig::default());
        (c, plan, predictor)
    }

    #[test]
    fn empirical_mean_agrees_with_analytic_mean() {
        let (c, plan, predictor) = setup();
        let mut rng = Rng::new(6);
        let mc = monte_carlo_prediction(&predictor, &plan, &c, 0.1, 40, &mut rng);
        let samples = c.draw_samples(0.1, 2, &mut rng);
        let analytic = predictor.predict(&plan, &c, &samples);
        let rel = (mc.mean_ms() - analytic.mean_ms()).abs() / analytic.mean_ms();
        assert!(
            rel < 0.1,
            "mc {} vs analytic {}",
            mc.mean_ms(),
            analytic.mean_ms()
        );
    }

    #[test]
    fn analytic_variance_dominates_empirical_selectivity_variance() {
        // The Monte-Carlo spread covers only the selectivity component; the
        // analytic Var[t_q] adds Var[c] on top and must be at least
        // comparable (allow slack for the bound conservatism both ways).
        let (c, plan, predictor) = setup();
        let mut rng = Rng::new(7);
        let mc = monte_carlo_prediction(&predictor, &plan, &c, 0.05, 60, &mut rng);
        let samples = c.draw_samples(0.05, 2, &mut rng);
        let analytic = predictor.predict(&plan, &c, &samples);
        assert!(
            analytic.var() > 0.3 * mc.var(),
            "analytic {} vs empirical selectivity-only {}",
            analytic.var(),
            mc.var()
        );
        let sel_only = analytic.breakdown.selectivity_exact + analytic.breakdown.covariance_bounds;
        // Same order of magnitude.
        let ratio = (sel_only / mc.var()).max(mc.var() / sel_only);
        assert!(
            ratio < 12.0,
            "sel-only {} vs empirical {}",
            sel_only,
            mc.var()
        );
    }

    #[test]
    fn different_sample_sets_give_different_distributions() {
        // The §6.3.2 subtlety (Figure 7): the model's output distribution
        // depends on the sample set, so two analytic predictions from
        // different samples differ in both mean and variance.
        let (c, plan, predictor) = setup();
        let mut rng = Rng::new(8);
        let s1 = c.draw_samples(0.05, 2, &mut rng);
        let s2 = c.draw_samples(0.05, 2, &mut rng);
        let p1 = predictor.predict(&plan, &c, &s1);
        let p2 = predictor.predict(&plan, &c, &s2);
        assert_ne!(p1.mean_ms(), p2.mean_ms());
        assert_ne!(p1.var(), p2.var());
    }

    #[test]
    fn quantiles_are_monotone() {
        let (c, plan, predictor) = setup();
        let mut rng = Rng::new(9);
        let mc = monte_carlo_prediction(&predictor, &plan, &c, 0.1, 30, &mut rng);
        let q25 = mc.quantile(0.25);
        let q50 = mc.quantile(0.5);
        let q75 = mc.quantile(0.75);
        assert!(q25 <= q50 && q50 <= q75);
        assert!(mc.fitted_normal().var() >= 0.0);
    }

    #[test]
    fn quantile_boundaries_are_the_observed_extremes() {
        // The empirical quantile has a closed domain: its order statistics
        // have finite extremes, unlike the normal's inverse CDF.
        let mc = EmpiricalPrediction::new(vec![5.0, 1.0, 3.0, 9.0, 7.0]);
        assert_eq!(mc.quantile(0.0), 1.0);
        assert_eq!(mc.quantile(1.0), 9.0);
        assert_eq!(mc.quantile(0.5), 5.0);
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1]")]
    fn quantile_rejects_out_of_range_p() {
        EmpiricalPrediction::new(vec![1.0, 2.0]).quantile(1.5);
    }
}
