//! # uaq-core
//!
//! The paper's primary contribution: an uncertainty-aware query execution
//! time predictor. Instead of a point estimate it reports a *distribution*
//! of likely running times, `t_q ~ N(E[t_q], Var[t_q])`, by treating the
//! cost units `c` and the operator selectivities `X` as random variables
//! (Wu, Wu, Hacıgümüş, Naughton: "Uncertainty Aware Query Execution Time
//! Prediction", 2014).
//!
//! ```no_run
//! use uaq_core::{Predictor, PredictorConfig};
//! use uaq_cost::{calibrate, CalibrationConfig, HardwareProfile};
//! use uaq_stats::Rng;
//! # let catalog: uaq_storage::Catalog = unimplemented!();
//! # let plan: uaq_engine::Plan = unimplemented!();
//! let mut rng = Rng::new(42);
//! let units = calibrate(&HardwareProfile::pc1(), &CalibrationConfig::default(), &mut rng);
//! let samples = catalog.draw_samples(0.05, 2, &mut rng);
//! let predictor = Predictor::new(units, PredictorConfig::default());
//! let prediction = predictor.predict(&plan, &catalog, &samples);
//! println!("expected {:.1} ms ± {:.1}", prediction.mean_ms(), prediction.std_dev_ms());
//! let (lo, hi) = prediction.confidence_interval_ms(0.70);
//! println!("with probability 70%, between {lo:.1} and {hi:.1} ms");
//! ```

pub mod montecarlo;
pub mod predictor;
pub mod terms;
pub mod variant;

pub use montecarlo::{monte_carlo_prediction, EmpiricalPrediction};
pub use predictor::{Prediction, Predictor, PredictorConfig, VarianceBreakdown};
pub use terms::{resolve_term, CovEnv, VarTerm};
pub use variant::Variant;
