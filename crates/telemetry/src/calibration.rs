//! Calibration monitor: does reality land where the predictor said?
//!
//! The stack predicts *distributions*; this module tallies how often
//! observed runtimes fall inside the predicted 50%/90%/99% central
//! intervals, the mean probability-integral-transform (PIT) value, and
//! the predicted vs observed deadline-violation rates — per workload
//! shape, so one drifting shape can't hide inside a healthy aggregate.
//!
//! The monitor is deliberately math-free: callers compute interval
//! membership, PIT, and violation probabilities from their own
//! distribution type and hand over an [`Observation`]. That keeps this
//! crate zero-dependency and keeps the tallies trivially deterministic
//! (sums and counts of caller-provided values, keyed through a
//! `BTreeMap`).
//!
//! Reading the numbers: a well-calibrated shape has coverage ≈ the
//! nominal level and mean PIT ≈ 0.5. Coverage *below* nominal means the
//! predicted intervals are too narrow (overconfident variance); mean PIT
//! away from 0.5 means the mean is biased. These are exactly the signals
//! ROADMAP item 4's online recalibration will act on.

use std::sync::{Mutex, PoisonError};

use crate::registry::Registry;

/// One (predicted distribution, observed runtime) pair, pre-digested by
/// the caller.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Workload shape label (plan shape key or scenario query name).
    pub shape: String,
    pub observed_ms: f64,
    /// CDF of the predicted distribution at the observed value.
    pub pit: f64,
    /// Observed value inside the predicted 50% central interval?
    pub in50: bool,
    pub in90: bool,
    pub in99: bool,
    /// Predicted `Pr(T > deadline)` and what actually happened, when the
    /// request carried a deadline.
    pub predicted_violation: Option<f64>,
    pub violated: Option<bool>,
}

#[derive(Debug, Clone, Default)]
struct Tally {
    n: u64,
    in50: u64,
    in90: u64,
    in99: u64,
    pit_sum: f64,
    deadline_n: u64,
    predicted_violation_sum: f64,
    violations: u64,
}

/// Per-shape calibration statistics, in snapshot form.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeCalibration {
    pub shape: String,
    pub n: u64,
    /// Empirical coverage of the predicted 50/90/99% central intervals.
    pub coverage50: f64,
    pub coverage90: f64,
    pub coverage99: f64,
    /// Mean PIT value (0.5 when the predicted location is unbiased).
    pub mean_pit: f64,
    /// Deadline-carrying observations only (`NaN` if none).
    pub predicted_violation_rate: f64,
    pub observed_violation_rate: f64,
}

impl ShapeCalibration {
    /// Table rendering shared by the scenario reports.
    pub fn render_table(shapes: &[ShapeCalibration]) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>5} {:>7} {:>7} {:>7} {:>8} {:>10} {:>10}",
            "shape", "n", "cov50", "cov90", "cov99", "mean-PIT", "pred-viol", "obs-viol"
        );
        let pct = |v: f64| {
            if v.is_nan() {
                "n/a".to_owned()
            } else {
                format!("{:.1}%", 100.0 * v)
            }
        };
        for s in shapes {
            let _ = writeln!(
                out,
                "{:<28} {:>5} {:>7} {:>7} {:>7} {:>8.3} {:>10} {:>10}",
                s.shape,
                s.n,
                pct(s.coverage50),
                pct(s.coverage90),
                pct(s.coverage99),
                s.mean_pit,
                pct(s.predicted_violation_rate),
                pct(s.observed_violation_rate),
            );
        }
        out
    }
}

/// Aggregates [`Observation`]s into per-shape tallies. Shareable across
/// threads; `record` takes a short mutex (observation feeds are scenario
/// or completion paths, not the warm predict path).
#[derive(Debug, Default)]
pub struct CalibrationMonitor {
    shapes: Mutex<std::collections::BTreeMap<String, Tally>>,
}

impl CalibrationMonitor {
    pub fn new() -> CalibrationMonitor {
        CalibrationMonitor::default()
    }

    pub fn record(&self, obs: &Observation) {
        let mut shapes = self.shapes.lock().unwrap_or_else(PoisonError::into_inner);
        let t = shapes.entry(obs.shape.clone()).or_default();
        t.n += 1;
        t.in50 += obs.in50 as u64;
        t.in90 += obs.in90 as u64;
        t.in99 += obs.in99 as u64;
        t.pit_sum += obs.pit;
        if let Some(p) = obs.predicted_violation {
            t.deadline_n += 1;
            t.predicted_violation_sum += p;
            t.violations += obs.violated.unwrap_or(false) as u64;
        }
    }

    /// Per-shape statistics, sorted by shape label.
    pub fn report(&self) -> Vec<ShapeCalibration> {
        let shapes = self.shapes.lock().unwrap_or_else(PoisonError::into_inner);
        shapes
            .iter()
            .map(|(shape, t)| {
                let n = t.n as f64;
                ShapeCalibration {
                    shape: shape.clone(),
                    n: t.n,
                    coverage50: t.in50 as f64 / n,
                    coverage90: t.in90 as f64 / n,
                    coverage99: t.in99 as f64 / n,
                    mean_pit: t.pit_sum / n,
                    predicted_violation_rate: if t.deadline_n == 0 {
                        f64::NAN
                    } else {
                        t.predicted_violation_sum / t.deadline_n as f64
                    },
                    observed_violation_rate: if t.deadline_n == 0 {
                        f64::NAN
                    } else {
                        t.violations as f64 / t.deadline_n as f64
                    },
                }
            })
            .collect()
    }

    /// Exports the report as gauges:
    /// `uaq_calibration_coverage{shape,interval}`,
    /// `uaq_calibration_pit_mean{shape}`,
    /// `uaq_calibration_violation_rate{shape,kind}` and
    /// `uaq_calibration_observations{shape}`.
    pub fn export_gauges(&self, registry: &Registry) {
        for s in self.report() {
            let shape = s.shape.as_str();
            for (interval, v) in [
                ("50", s.coverage50),
                ("90", s.coverage90),
                ("99", s.coverage99),
            ] {
                registry
                    .gauge(
                        "uaq_calibration_coverage",
                        &[("interval", interval), ("shape", shape)],
                    )
                    .set(v);
            }
            registry
                .gauge("uaq_calibration_pit_mean", &[("shape", shape)])
                .set(s.mean_pit);
            registry
                .gauge("uaq_calibration_observations", &[("shape", shape)])
                .set(s.n as f64);
            for (kind, v) in [
                ("predicted", s.predicted_violation_rate),
                ("observed", s.observed_violation_rate),
            ] {
                if !v.is_nan() {
                    registry
                        .gauge(
                            "uaq_calibration_violation_rate",
                            &[("kind", kind), ("shape", shape)],
                        )
                        .set(v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(shape: &str, pit: f64, in50: bool, in90: bool) -> Observation {
        Observation {
            shape: shape.to_owned(),
            observed_ms: 10.0,
            pit,
            in50,
            in90,
            in99: true,
            predicted_violation: None,
            violated: None,
        }
    }

    #[test]
    fn tallies_coverage_per_shape() {
        let m = CalibrationMonitor::new();
        m.record(&obs("scan", 0.4, true, true));
        m.record(&obs("scan", 0.9, false, true));
        m.record(&obs("join", 0.5, true, true));
        let report = m.report();
        assert_eq!(report.len(), 2);
        // BTreeMap order: join before scan.
        assert_eq!(report[0].shape, "join");
        let scan = &report[1];
        assert_eq!(scan.n, 2);
        assert_eq!(scan.coverage50, 0.5);
        assert_eq!(scan.coverage90, 1.0);
        assert_eq!(scan.coverage99, 1.0);
        assert!((scan.mean_pit - 0.65).abs() < 1e-12);
        assert!(scan.predicted_violation_rate.is_nan());
    }

    #[test]
    fn violation_rates_only_count_deadline_observations() {
        let m = CalibrationMonitor::new();
        let mut with_deadline = obs("scan", 0.5, true, true);
        with_deadline.predicted_violation = Some(0.2);
        with_deadline.violated = Some(true);
        m.record(&with_deadline);
        m.record(&obs("scan", 0.5, true, true)); // no deadline
        let s = &m.report()[0];
        assert_eq!(s.n, 2);
        assert_eq!(s.predicted_violation_rate, 0.2);
        assert_eq!(s.observed_violation_rate, 1.0);
    }

    #[test]
    fn gauges_export_the_report() {
        let m = CalibrationMonitor::new();
        m.record(&obs("scan", 0.5, true, true));
        let r = Registry::new();
        m.export_gauges(&r);
        let snap = r.snapshot();
        assert_eq!(
            snap.gauge(
                "uaq_calibration_coverage",
                &[("interval", "90"), ("shape", "scan")]
            ),
            Some(1.0)
        );
        assert_eq!(
            snap.gauge("uaq_calibration_observations", &[("shape", "scan")]),
            Some(1.0)
        );
        // NaN rates are skipped, not exported as NaN.
        assert_eq!(
            snap.gauge(
                "uaq_calibration_violation_rate",
                &[("kind", "observed"), ("shape", "scan")]
            ),
            None
        );
    }

    #[test]
    fn render_table_lists_every_shape() {
        let m = CalibrationMonitor::new();
        m.record(&obs("scan", 0.5, true, true));
        m.record(&obs("join", 0.5, true, true));
        let text = ShapeCalibration::render_table(&m.report());
        assert!(text.contains("scan") && text.contains("join"));
        assert!(text.contains("cov90"));
    }
}
