//! # uaq_telemetry — the observability plane
//!
//! A std-only (zero-dependency) subsystem the rest of the stack threads
//! through: it must never pull math, I/O, or concurrency machinery into
//! the bit-deterministic prediction path, and it must never *be* the
//! reason a prediction differs between two runs.
//!
//! Four pieces:
//!
//! * [`registry`] — a lock-cheap [`registry::Registry`] of named
//!   counters, gauges, and histograms. Registration takes a lock;
//!   increments are plain atomics on clone-cheap handles. A
//!   [`registry::Snapshot`] is the in-memory model, exportable as
//!   Prometheus text exposition or JSON, and both exports parse back
//!   (round-trip tested).
//! * [`span`] — a thread-local per-request [`span::SpanRecorder`]
//!   capturing the pipeline breakdown (queue wait, admission, cache
//!   probes, sample pass, fit, Monte-Carlo, total). **This module is the
//!   only sanctioned home of `Instant::now` for the deterministic
//!   prediction path**; CI greps the predictor crates to keep wall-clock
//!   reads out of result values.
//! * [`calibration`] — per-shape PIT/coverage tallies over (predicted
//!   distribution, observed runtime) pairs. The monitor is math-free:
//!   callers hand it precomputed interval membership and PIT values, so
//!   the crate stays zero-dependency.
//! * [`events`] — a hand-rolled JSON value (used by the registry's JSON
//!   export) plus a JSONL structured-event builder for scenario runs.

pub mod calibration;
pub mod events;
pub mod histogram;
pub mod registry;
pub mod span;

pub use calibration::{CalibrationMonitor, Observation, ShapeCalibration};
pub use events::{Event, Json};
pub use histogram::{Histogram, HistogramConfig, HistogramSnapshot};
pub use registry::{Counter, Gauge, MetricValue, Registry, Snapshot};
pub use span::{Stage, StageTimings};
