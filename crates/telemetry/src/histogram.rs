//! Log-linear-bucket histogram with atomic counters on the record path.
//!
//! Bucket boundaries follow the HDR discipline: each power-of-two range
//! `[p, 2p)` between `min` and `max` is split into `sub_buckets` equal
//! linear steps, so relative error is bounded (~`1/sub_buckets`) at every
//! magnitude while the bucket count stays logarithmic in the dynamic
//! range. Boundaries are precomputed once; `record` is a binary search
//! plus one `fetch_add` and one compare-and-swap (the f64 running sum).
//!
//! Bucket semantics (shared with the Prometheus exposition): bucket `i`
//! counts values `v <= bounds[i]` not counted by an earlier bucket;
//! values below `bounds[0]` land in bucket 0, values above the last
//! bound land in the trailing overflow bucket (`le="+Inf"`).

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket layout. The defaults cover 1 µs … ~1000 s in seconds — the
/// stage-timing range — at ≤ 25% relative error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramConfig {
    /// Lower edge of the first power-of-two range (must be > 0).
    pub min: f64,
    /// Boundary generation stops once a bound reaches `max`.
    pub max: f64,
    /// Linear subdivisions per power-of-two range (must be ≥ 1).
    pub sub_buckets: usize,
}

impl Default for HistogramConfig {
    fn default() -> Self {
        HistogramConfig {
            min: 1e-6,
            max: 1e3,
            sub_buckets: 4,
        }
    }
}

impl HistogramConfig {
    /// The precomputed upper bounds (strictly increasing, ends ≥ `max`).
    pub fn bounds(&self) -> Vec<f64> {
        assert!(self.min > 0.0 && self.max > self.min && self.sub_buckets >= 1);
        let mut bounds = Vec::new();
        let mut lo = self.min;
        loop {
            let hi = lo * 2.0;
            let step = (hi - lo) / self.sub_buckets as f64;
            for i in 1..=self.sub_buckets {
                let b = lo + step * i as f64;
                bounds.push(b);
                if b >= self.max {
                    return bounds;
                }
            }
            lo = hi;
        }
    }
}

/// Concurrent histogram. Cheap to record into from many threads;
/// `snapshot()` is the read side.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` slots; the last is the overflow bucket.
    counts: Vec<AtomicU64>,
    /// Running sum of recorded values, stored as f64 bits.
    sum_bits: AtomicU64,
}

impl Histogram {
    pub fn new(config: HistogramConfig) -> Histogram {
        let bounds = config.bounds();
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Index of the bucket that counts `v`.
    ///
    /// The contract, in full (each case has a boundary test):
    ///
    /// * `v` strictly between two bounds → the bucket of the *upper*
    ///   bound (`le` semantics, matching the Prometheus exposition);
    /// * `v` exactly on `bounds[i]` → bucket `i` (a bound is inclusive
    ///   on its own bucket, never the next one);
    /// * `v <= bounds[0]` — including `0.0`, `-0.0`, negatives, and
    ///   `f64::NEG_INFINITY` — → bucket 0;
    /// * `v > bounds[last]` — including `f64::INFINITY` — → the
    ///   trailing overflow bucket (`bounds.len()`, exposed as
    ///   `le="+Inf"`).
    ///
    /// NaN never reaches this function: `record` drops it first (NaN
    /// has no ordering, so no bucket could be deterministic).
    fn bucket_of(&self, v: f64) -> usize {
        self.bounds.partition_point(|&b| b < v)
    }

    /// Records one value. NaN is dropped (it has no ordering).
    pub fn record(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.counts[self.bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of a histogram: the in-memory model behind both
/// exports and the quantile estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub bounds: Vec<f64>,
    /// `bounds.len() + 1` entries; trailing entry is the overflow bucket.
    pub counts: Vec<u64>,
    pub sum: f64,
}

impl HistogramSnapshot {
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            f64::NAN
        } else {
            self.sum / n as f64
        }
    }

    /// Merges another snapshot recorded with the same bucket layout.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.bounds, other.bounds,
            "merge requires one bucket layout"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
    }

    /// Quantile estimate (`q` in [0, 1]) by cumulative walk with linear
    /// interpolation inside the landing bucket. The overflow bucket has
    /// no upper edge, so it reports the last finite bound — a documented
    /// floor, not an extrapolation. NaN on an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * total as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let upto = seen + c;
            if (upto as f64) >= target {
                let last = self.bounds.len() - 1;
                let (lo, hi) = if i == 0 {
                    (0.0, self.bounds[0])
                } else if i > last {
                    return self.bounds[last];
                } else {
                    (self.bounds[i - 1], self.bounds[i])
                };
                let into = (target - seen as f64).max(0.0) / c as f64;
                return lo + (hi - lo) * into;
            }
            seen = upto;
        }
        self.bounds[self.bounds.len() - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_log_linear_and_strictly_increasing() {
        let cfg = HistogramConfig {
            min: 1.0,
            max: 8.0,
            sub_buckets: 2,
        };
        // [1,2) split in 2 → 1.5, 2; [2,4) → 3, 4; [4,8) → 6, 8 (stop).
        assert_eq!(cfg.bounds(), vec![1.5, 2.0, 3.0, 4.0, 6.0, 8.0]);
        let default_bounds = HistogramConfig::default().bounds();
        assert!(default_bounds.windows(2).all(|w| w[0] < w[1]));
        assert!(*default_bounds.last().unwrap() >= 1e3);
        // Logarithmic in the dynamic range: 30 doublings × 4 sub-buckets.
        assert!(default_bounds.len() < 140, "{}", default_bounds.len());
    }

    #[test]
    fn values_land_in_the_documented_buckets() {
        let h = Histogram::new(HistogramConfig {
            min: 1.0,
            max: 8.0,
            sub_buckets: 2,
        });
        // bounds: [1.5, 2, 3, 4, 6, 8] + overflow
        h.record(0.1); // underflow → bucket 0 (≤ 1.5)
        h.record(1.5); // exactly on a bound → that bucket (le semantics)
        h.record(1.6); // → bucket 1 (≤ 2)
        h.record(5.0); // → bucket 4 (≤ 6)
        h.record(8.0); // last finite bucket
        h.record(9.0); // overflow
        h.record(f64::NAN); // dropped
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 0, 0, 1, 1, 1]);
        assert_eq!(s.count(), 6);
        assert!((s.sum - 25.2).abs() < 1e-12);
    }

    /// The full `bucket_of` edge contract: every boundary value lands in
    /// the documented bucket, deterministically.
    #[test]
    fn bucket_edges_are_deterministic_and_documented() {
        let h = Histogram::new(HistogramConfig {
            min: 1.0,
            max: 8.0,
            sub_buckets: 2,
        });
        // bounds: [1.5, 2, 3, 4, 6, 8] + overflow (7 slots)
        // Every bound exactly: bucket i, never i+1.
        for b in [1.5, 2.0, 3.0, 4.0, 6.0, 8.0] {
            h.record(b);
        }
        assert_eq!(h.snapshot().counts, vec![1, 1, 1, 1, 1, 1, 0]);
        // Underflow family: 0.0, -0.0, negatives, -inf → bucket 0.
        for v in [0.0, -0.0, -3.5, f64::NEG_INFINITY] {
            h.record(v);
        }
        assert_eq!(h.snapshot().counts, vec![5, 1, 1, 1, 1, 1, 0]);
        // Overflow family: past the last bound, +inf → trailing bucket.
        for v in [8.0000001, 1e308, f64::INFINITY] {
            h.record(v);
        }
        assert_eq!(h.snapshot().counts, vec![5, 1, 1, 1, 1, 1, 3]);
        // Just under / just over a bound straddle it.
        h.record(2.0 - 1e-12);
        h.record(2.0 + 1e-12);
        assert_eq!(h.snapshot().counts, vec![5, 2, 2, 1, 1, 1, 3]);
        // NaN is dropped before bucketing: counts and sum are untouched.
        let before = h.snapshot();
        h.record(f64::NAN);
        assert_eq!(h.snapshot().counts, before.counts);
        assert_eq!(h.snapshot().sum.to_bits(), before.sum.to_bits());
    }

    #[test]
    fn merge_adds_counts_and_sums() {
        let cfg = HistogramConfig {
            min: 1.0,
            max: 8.0,
            sub_buckets: 2,
        };
        let a = Histogram::new(cfg);
        let b = Histogram::new(cfg);
        for v in [0.5, 2.0, 7.0] {
            a.record(v);
        }
        for v in [2.5, 100.0] {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 5);
        assert!((merged.sum - 112.0).abs() < 1e-12);
        let manual = Histogram::new(cfg);
        for v in [0.5, 2.0, 7.0, 2.5, 100.0] {
            manual.record(v);
        }
        assert_eq!(merged.counts, manual.snapshot().counts);
    }

    #[test]
    fn quantile_estimates_are_monotone_in_q() {
        let h = Histogram::new(HistogramConfig::default());
        // A deterministic spread across several magnitudes.
        let mut v = 1.3e-6;
        for _ in 0..500 {
            h.record(v);
            v *= 1.037;
        }
        let s = h.snapshot();
        let qs: Vec<f64> = (0..=20).map(|i| s.quantile(i as f64 / 20.0)).collect();
        for w in qs.windows(2) {
            assert!(
                w[0] <= w[1],
                "quantile estimate must be monotone: {} > {}",
                w[0],
                w[1]
            );
        }
        // And roughly located: the median of the geometric ramp sits
        // between the extremes, not pinned at either end.
        assert!(qs[10] > s.quantile(0.0) && qs[10] < s.quantile(1.0));
    }

    #[test]
    fn quantile_handles_empty_and_overflow() {
        let h = Histogram::new(HistogramConfig {
            min: 1.0,
            max: 8.0,
            sub_buckets: 2,
        });
        assert!(h.snapshot().quantile(0.5).is_nan());
        h.record(1e9); // everything in overflow
        let s = h.snapshot();
        // Overflow has no upper edge: the estimate floors at the last
        // finite bound.
        assert_eq!(s.quantile(0.99), 8.0);
    }
}
