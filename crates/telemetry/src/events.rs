//! A minimal JSON value plus a JSONL event builder.
//!
//! No serde in this environment, so the crate carries its own JSON:
//! enough to emit the registry's JSON export, parse it back (the
//! round-trip contract the exports are tested against), and write
//! one-line-per-request structured events that `grep`/`jq` can chew on.
//!
//! Numbers keep their *raw text* ([`Json::Num`] wraps the printed form):
//! `u64` counters stay exact past 2^53 and `f64` gauges round-trip
//! bit-identically through Rust's shortest-representation `Display`.

use std::fmt::Write as _;

/// A JSON value. Numbers are stored as raw text (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// Finite floats print via `Display` (shortest round-trip form);
    /// NaN/inf have no JSON spelling and become `null`.
    pub fn f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v}"))
        } else {
            Json::Null
        }
    }

    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn render(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }

    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.render(&mut out);
        out
    }

    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err("unexpected end of input".into());
    };
    match b {
        b'n' => parse_lit(bytes, pos, "null", Json::Null),
        b't' => parse_lit(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false", Json::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        b'-' | b'0'..=b'9' => {
            let start = *pos;
            *pos += 1;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let raw = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            raw.parse::<f64>()
                .map_err(|e| format!("bad number {raw:?}: {e}"))?;
            Ok(Json::Num(raw.to_owned()))
        }
        other => Err(format!(
            "unexpected byte {:?} at offset {pos}",
            other as char
        )),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected {lit} at offset {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("\\u{hex}: {e}"))?;
                        *pos += 4;
                        out.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                    }
                    other => return Err(format!("unknown escape \\{}", other as char)),
                }
            }
            _ => {
                // Consume one UTF-8 scalar starting here.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("empty string tail")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Builder for one structured event, rendered as a single JSONL line.
/// Field order is the insertion order, so event streams stay stable and
/// diff-able across runs.
#[derive(Debug, Clone, Default)]
pub struct Event {
    fields: Vec<(String, Json)>,
}

impl Event {
    pub fn new(kind: &str) -> Event {
        Event {
            fields: vec![("event".to_owned(), Json::str(kind))],
        }
    }

    pub fn field(mut self, name: &str, value: Json) -> Event {
        self.fields.push((name.to_owned(), value));
        self
    }

    pub fn str(self, name: &str, value: impl Into<String>) -> Event {
        self.field(name, Json::str(value))
    }

    pub fn u64(self, name: &str, value: u64) -> Event {
        self.field(name, Json::u64(value))
    }

    pub fn f64(self, name: &str, value: f64) -> Event {
        self.field(name, Json::f64(value))
    }

    pub fn bool(self, name: &str, value: bool) -> Event {
        self.field(name, Json::Bool(value))
    }

    /// The event as one newline-free JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        Json::Obj(self.fields.clone()).to_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_every_value_kind() {
        let v = Json::Obj(vec![
            ("null".into(), Json::Null),
            ("yes".into(), Json::Bool(true)),
            ("count".into(), Json::u64(u64::MAX)),
            ("ratio".into(), Json::f64(0.1 + 0.2)),
            (
                "name".into(),
                Json::str("a \"quoted\"\\ line\nwith\tctrl \u{1}"),
            ),
            ("arr".into(), Json::Arr(vec![Json::u64(1), Json::f64(2.5)])),
        ]);
        let text = v.to_text();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back, v);
        // u64 exactness past 2^53.
        assert_eq!(back.get("count").unwrap().as_u64(), Some(u64::MAX));
        // f64 bit-exactness via shortest-repr Display.
        let r = back.get("ratio").unwrap().as_f64().unwrap();
        assert_eq!(r.to_bits(), (0.1f64 + 0.2).to_bits());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::f64(f64::NAN), Json::Null);
        assert_eq!(Json::f64(f64::INFINITY), Json::Null);
    }

    #[test]
    fn event_lines_are_single_line_json() {
        let line = Event::new("request")
            .str("tier", "full")
            .u64("id", 7)
            .f64("predicted_ms", 12.25)
            .bool("admitted", true)
            .to_jsonl();
        assert!(!line.contains('\n'));
        let v = Json::parse(&line).expect("parse");
        assert_eq!(v.get("event").unwrap().as_str(), Some("request"));
        assert_eq!(v.get("tier").unwrap().as_str(), Some("full"));
        assert_eq!(v.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("predicted_ms").unwrap().as_f64(), Some(12.25));
        assert_eq!(v.get("admitted"), Some(&Json::Bool(true)));
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
    }
}
