//! The metrics registry: named counters, gauges, and histograms.
//!
//! Lock discipline: registration (`counter`/`gauge`/`histogram`) takes
//! the registry mutex once and hands back a clone-cheap *handle* whose
//! increments are plain atomics — the hot path never locks. Handles
//! outlive the registry lookup; two registrations of the same
//! (name, labels) share one underlying cell, so a cache constructed
//! before the service and a snapshot taken after see the same numbers.
//!
//! `snapshot()` materializes the in-memory model ([`Snapshot`]), which
//! exports as Prometheus text exposition or JSON — and both formats
//! parse back into an equal `Snapshot` (round-trip tested), so dumps are
//! lossless.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::events::Json;
use crate::histogram::{Histogram, HistogramConfig, HistogramSnapshot};

/// Monotone counter handle. Clone-cheap; clones share the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter bound to no registry — for standalone components
    /// (e.g. a cache constructed outside a service).
    pub fn detached() -> Counter {
        Counter::default()
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Gauge handle: an f64 cell (stored as bits). Clone-cheap.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative) with a CAS loop.
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Histogram>),
}

type Key = (String, Vec<(String, String)>);

fn key_of(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut ls: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect();
    ls.sort();
    (name.to_owned(), ls)
}

/// The registry. Keyed by (name, sorted labels) in a `BTreeMap`, so
/// snapshots and exports come out in one deterministic order.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<Key, Metric>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<Key, Metric>> {
        // A poisoned map only means some thread died mid-registration;
        // the map itself is always structurally sound.
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Gets or registers a counter. On a kind collision (the name is
    /// already a gauge/histogram) returns a detached handle rather than
    /// panicking: telemetry must never take the serving path down.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self
            .lock()
            .entry(key_of(name, labels))
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::detached(),
        }
    }

    /// Gets or registers a gauge (detached handle on kind collision).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self
            .lock()
            .entry(key_of(name, labels))
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::detached(),
        }
    }

    /// Gets or registers a histogram. The config only applies on first
    /// registration; later calls return the existing instance.
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        config: HistogramConfig,
    ) -> Arc<Histogram> {
        match self
            .lock()
            .entry(key_of(name, labels))
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(config))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => Arc::new(Histogram::new(config)),
        }
    }

    pub fn snapshot(&self) -> Snapshot {
        let samples = self
            .lock()
            .iter()
            .map(|((name, labels), metric)| MetricSample {
                name: name.clone(),
                labels: labels.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        Snapshot { samples }
    }
}

/// One metric's point-in-time value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramSnapshot),
}

/// One (name, labels) series in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    pub name: String,
    /// Sorted by label key.
    pub labels: Vec<(String, String)>,
    pub value: MetricValue,
}

/// The in-memory export model: every series, sorted by (name, labels).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    pub samples: Vec<MetricSample>,
}

impl Snapshot {
    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSample> {
        let key = key_of(name, labels);
        self.samples
            .iter()
            .find(|s| s.name == key.0 && s.labels == key.1)
    }

    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.find(name, labels)?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Sum of a counter across all its label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match s.value {
                MetricValue::Counter(v) => Some(v),
                _ => None,
            })
            .sum()
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.find(name, labels)?.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match &self.find(name, labels)?.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Prometheus text exposition (format version 0.0.4).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for s in &self.samples {
            if s.name != last_name {
                let kind = match s.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {} {}", s.name, kind);
                last_name = &s.name;
            }
            match &s.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {}", s.name, prom_labels(&s.labels, None), v);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", s.name, prom_labels(&s.labels, None), v);
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, b) in h.bounds.iter().enumerate() {
                        cum += h.counts[i];
                        let le = format!("{b}");
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            s.name,
                            prom_labels(&s.labels, Some(&le)),
                            cum
                        );
                    }
                    cum += h.counts[h.bounds.len()];
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        s.name,
                        prom_labels(&s.labels, Some("+Inf")),
                        cum
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        s.name,
                        prom_labels(&s.labels, None),
                        h.sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        s.name,
                        prom_labels(&s.labels, None),
                        cum
                    );
                }
            }
        }
        out
    }

    /// Parses text produced by [`Snapshot::to_prometheus`] back into an
    /// equal snapshot.
    pub fn from_prometheus(text: &str) -> Result<Snapshot, String> {
        let mut kinds: BTreeMap<String, &str> = BTreeMap::new();
        // (name, labels) → partial histogram state.
        struct HistAcc {
            bounds: Vec<f64>,
            cum: Vec<u64>,
            inf: u64,
            sum: f64,
        }
        let mut hists: BTreeMap<Key, HistAcc> = BTreeMap::new();
        let mut scalars: BTreeMap<Key, MetricValue> = BTreeMap::new();

        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().ok_or("bare # TYPE line")?;
                let kind = it.next().ok_or("missing kind in # TYPE")?;
                let kind = match kind {
                    "counter" => "counter",
                    "gauge" => "gauge",
                    "histogram" => "histogram",
                    other => return Err(format!("unknown metric kind {other}")),
                };
                kinds.insert(name.to_owned(), kind);
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("no value on line {line:?}"))?;
            let (name, mut labels) = parse_series(series)?;
            // Histogram sub-series route to their accumulator.
            let (base, part) = if let Some(b) = name.strip_suffix("_bucket") {
                (b.to_owned(), "bucket")
            } else if let Some(b) = name
                .strip_suffix("_sum")
                .filter(|b| kinds.get(*b) == Some(&"histogram"))
            {
                (b.to_owned(), "sum")
            } else if let Some(b) = name
                .strip_suffix("_count")
                .filter(|b| kinds.get(*b) == Some(&"histogram"))
            {
                (b.to_owned(), "count")
            } else {
                (name.clone(), "scalar")
            };
            if part == "scalar" {
                let value = match kinds.get(&name).copied() {
                    Some("counter") => MetricValue::Counter(
                        value.parse().map_err(|e| format!("counter {name}: {e}"))?,
                    ),
                    Some("gauge") => {
                        MetricValue::Gauge(value.parse().map_err(|e| format!("gauge {name}: {e}"))?)
                    }
                    _ => return Err(format!("sample {name} has no # TYPE")),
                };
                scalars.insert((name, labels), value);
                continue;
            }
            let le = if part == "bucket" {
                let i = labels
                    .iter()
                    .position(|(k, _)| k == "le")
                    .ok_or_else(|| format!("{base}_bucket without le"))?;
                Some(labels.remove(i).1)
            } else {
                None
            };
            let acc = hists.entry((base, labels)).or_insert(HistAcc {
                bounds: Vec::new(),
                cum: Vec::new(),
                inf: 0,
                sum: 0.0,
            });
            match part {
                "bucket" => {
                    let c: u64 = value.parse().map_err(|e| format!("bucket count: {e}"))?;
                    let le = le.expect("bucket has le");
                    if le == "+Inf" {
                        acc.inf = c;
                    } else {
                        acc.bounds
                            .push(le.parse().map_err(|e| format!("le bound: {e}"))?);
                        acc.cum.push(c);
                    }
                }
                "sum" => acc.sum = value.parse().map_err(|e| format!("sum: {e}"))?,
                "count" => {} // redundant with the +Inf bucket
                _ => unreachable!(),
            }
        }

        let mut samples: Vec<MetricSample> = scalars
            .into_iter()
            .map(|((name, labels), value)| MetricSample {
                name,
                labels,
                value,
            })
            .collect();
        for ((name, labels), acc) in hists {
            // Decumulate the bucket series back to per-bucket counts.
            let mut counts = Vec::with_capacity(acc.cum.len() + 1);
            let mut prev = 0u64;
            for &c in &acc.cum {
                counts.push(c.checked_sub(prev).ok_or("non-monotone bucket series")?);
                prev = c;
            }
            counts.push(
                acc.inf
                    .checked_sub(prev)
                    .ok_or("non-monotone +Inf bucket")?,
            );
            samples.push(MetricSample {
                name,
                labels,
                value: MetricValue::Histogram(HistogramSnapshot {
                    bounds: acc.bounds,
                    counts,
                    sum: acc.sum,
                }),
            });
        }
        samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        Ok(Snapshot { samples })
    }

    /// JSON dump of the full model.
    pub fn to_json(&self) -> String {
        let metrics: Vec<Json> = self
            .samples
            .iter()
            .map(|s| {
                let mut fields = vec![
                    ("name".to_owned(), Json::str(&s.name)),
                    (
                        "labels".to_owned(),
                        Json::Obj(
                            s.labels
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::str(v)))
                                .collect(),
                        ),
                    ),
                ];
                match &s.value {
                    MetricValue::Counter(v) => {
                        fields.push(("type".to_owned(), Json::str("counter")));
                        fields.push(("value".to_owned(), Json::u64(*v)));
                    }
                    MetricValue::Gauge(v) => {
                        fields.push(("type".to_owned(), Json::str("gauge")));
                        fields.push(("value".to_owned(), Json::f64(*v)));
                    }
                    MetricValue::Histogram(h) => {
                        fields.push(("type".to_owned(), Json::str("histogram")));
                        fields.push((
                            "bounds".to_owned(),
                            Json::Arr(h.bounds.iter().map(|&b| Json::f64(b)).collect()),
                        ));
                        fields.push((
                            "counts".to_owned(),
                            Json::Arr(h.counts.iter().map(|&c| Json::u64(c)).collect()),
                        ));
                        fields.push(("sum".to_owned(), Json::f64(h.sum)));
                    }
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![("metrics".to_owned(), Json::Arr(metrics))]).to_text()
    }

    /// Parses [`Snapshot::to_json`] output back into an equal snapshot.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let root = Json::parse(text)?;
        let metrics = root
            .get("metrics")
            .and_then(Json::as_arr)
            .ok_or("missing metrics array")?;
        let mut samples = Vec::with_capacity(metrics.len());
        for m in metrics {
            let name = m
                .get("name")
                .and_then(Json::as_str)
                .ok_or("metric without name")?
                .to_owned();
            let labels = match m.get("labels") {
                Some(Json::Obj(fields)) => fields
                    .iter()
                    .map(|(k, v)| {
                        Ok((
                            k.clone(),
                            v.as_str().ok_or("non-string label value")?.to_owned(),
                        ))
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                _ => return Err(format!("metric {name} without labels object")),
            };
            let kind = m.get("type").and_then(Json::as_str).unwrap_or("");
            let err = |what: &str| format!("metric {name}: bad {what}");
            let value = match kind {
                "counter" => MetricValue::Counter(
                    m.get("value")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| err("counter value"))?,
                ),
                "gauge" => MetricValue::Gauge(
                    m.get("value")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| err("gauge value"))?,
                ),
                "histogram" => {
                    let nums = |field: &str| -> Result<Vec<Json>, String> {
                        Ok(m.get(field)
                            .and_then(Json::as_arr)
                            .ok_or_else(|| err(field))?
                            .to_vec())
                    };
                    MetricValue::Histogram(HistogramSnapshot {
                        bounds: nums("bounds")?
                            .iter()
                            .map(|j| j.as_f64().ok_or_else(|| err("bound")))
                            .collect::<Result<_, _>>()?,
                        counts: nums("counts")?
                            .iter()
                            .map(|j| j.as_u64().ok_or_else(|| err("count")))
                            .collect::<Result<_, _>>()?,
                        sum: m
                            .get("sum")
                            .and_then(Json::as_f64)
                            .ok_or_else(|| err("sum"))?,
                    })
                }
                other => return Err(format!("metric {name}: unknown type {other:?}")),
            };
            samples.push(MetricSample {
                name,
                labels,
                value,
            });
        }
        Ok(Snapshot { samples })
    }
}

/// `{k="v",...}` with optional `le`, empty string for no labels.
fn prom_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(le.map(|le| ("le", le)))
    {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Parses `name{k="v",...}` (labels optional) from an exposition line.
fn parse_series(series: &str) -> Result<(String, Vec<(String, String)>), String> {
    let Some(brace) = series.find('{') else {
        return Ok((series.to_owned(), Vec::new()));
    };
    let name = series[..brace].to_owned();
    let body = series[brace + 1..]
        .strip_suffix('}')
        .ok_or_else(|| format!("unterminated labels in {series:?}"))?;
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    while chars.peek().is_some() {
        let key: String = chars.by_ref().take_while(|&c| c != '=').collect();
        if chars.next() != Some('"') {
            return Err(format!("expected '\"' after {key}= in {series:?}"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in {series:?}")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(format!("unterminated label value in {series:?}")),
            }
        }
        labels.push((key, value));
        if chars.peek() == Some(&',') {
            chars.next();
        }
    }
    Ok((name, labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> Registry {
        let r = Registry::new();
        r.counter("uaq_requests_total", &[("tier", "full")]).add(12);
        r.counter("uaq_requests_total", &[("tier", "static")]).inc();
        r.gauge("uaq_queue_depth", &[]).set(3.0);
        r.gauge("uaq_coverage", &[("shape", "scan"), ("interval", "90")])
            .set(0.8925);
        let h = r.histogram(
            "uaq_stage_seconds",
            &[("stage", "fit"), ("tier", "full")],
            HistogramConfig {
                min: 1e-6,
                max: 1.0,
                sub_buckets: 2,
            },
        );
        for v in [1e-5, 2e-4, 0.3, 7.0] {
            h.record(v);
        }
        r
    }

    #[test]
    fn handles_share_one_cell_across_registrations() {
        let r = Registry::new();
        let a = r.counter("hits", &[("level", "fit")]);
        let b = r.counter("hits", &[("level", "fit")]);
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().counter("hits", &[("level", "fit")]), Some(3));
        // Label order does not split the series.
        let c = r.counter("multi", &[("b", "2"), ("a", "1")]);
        let d = r.counter("multi", &[("a", "1"), ("b", "2")]);
        c.inc();
        assert_eq!(d.get(), 1);
    }

    #[test]
    fn kind_collisions_return_detached_handles() {
        let r = Registry::new();
        r.counter("thing", &[]).inc();
        let g = r.gauge("thing", &[]);
        g.set(9.0); // goes nowhere visible
        assert_eq!(r.snapshot().counter("thing", &[]), Some(1));
        assert_eq!(r.snapshot().gauge("thing", &[]), None);
    }

    #[test]
    fn gauge_add_is_signed() {
        let g = Gauge::detached();
        g.add(2.5);
        g.add(-1.0);
        assert_eq!(g.get(), 1.5);
    }

    #[test]
    fn counter_total_sums_label_sets() {
        let s = populated().snapshot();
        assert_eq!(s.counter_total("uaq_requests_total"), 13);
        assert_eq!(s.counter_total("absent"), 0);
    }

    #[test]
    fn prometheus_export_round_trips() {
        let snap = populated().snapshot();
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE uaq_requests_total counter"));
        assert!(text.contains("uaq_requests_total{tier=\"full\"} 12"));
        assert!(text.contains("# TYPE uaq_stage_seconds histogram"));
        assert!(text.contains("le=\"+Inf\""));
        let back = Snapshot::from_prometheus(&text).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn json_export_round_trips() {
        let snap = populated().snapshot();
        let back = Snapshot::from_json(&snap.to_json()).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn exports_survive_hostile_label_values() {
        let r = Registry::new();
        r.counter("odd", &[("k", "a\"b\\c\nd,e={}")]).add(5);
        let snap = r.snapshot();
        assert_eq!(
            Snapshot::from_prometheus(&snap.to_prometheus()).expect("prom"),
            snap
        );
        assert_eq!(Snapshot::from_json(&snap.to_json()).expect("json"), snap);
    }

    #[test]
    fn histogram_quantiles_survive_the_round_trip() {
        let snap = populated().snapshot();
        let back = Snapshot::from_prometheus(&snap.to_prometheus()).expect("parse");
        let labels = [("stage", "fit"), ("tier", "full")];
        let orig = snap.histogram("uaq_stage_seconds", &labels).expect("hist");
        let hist = back.histogram("uaq_stage_seconds", &labels).expect("hist");
        assert_eq!(hist.count(), 4);
        assert_eq!(hist.quantile(0.5).to_bits(), orig.quantile(0.5).to_bits());
    }
}
