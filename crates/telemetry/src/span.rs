//! Per-request pipeline spans.
//!
//! **This module is the only sanctioned home of `Instant::now` for the
//! deterministic prediction path.** The predictor crates (core, selest,
//! engine, cost, stats, storage) never read the clock themselves — they
//! wrap work in [`timed`], which is a no-op unless a recorder is active
//! on the current thread. CI greps those crates to keep it that way, so
//! wall-clock values can never leak into bit-deterministic results
//! again (the PR 7 fix for `Prediction::sample_pass_seconds`).
//!
//! The recorder is thread-local (the service runs one request per worker
//! thread at a time), accumulating seconds per [`Stage`]. Stages nest:
//! `Exec` (engine-level) accrues inside `SamplePass` (predictor-level),
//! and everything accrues inside `Total`; no exclusivity is implied.

use std::cell::RefCell;
use std::time::Instant;

/// Pipeline stages, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Submit → worker pickup (service-level).
    QueueWait,
    /// Admission decision (policy math).
    Admission,
    /// Selectivity-estimate cache probe.
    SelCacheProbe,
    /// Sample pass: plan execution over sample tables + estimation.
    SamplePass,
    /// Engine executor proper (nested inside `SamplePass` on the
    /// prediction path; standalone for full executions).
    Exec,
    /// Fit cache probe (get/put at both shape levels).
    FitCacheProbe,
    /// Cost-function fitting + variance algebra.
    Fit,
    /// Monte-Carlo propagation.
    MonteCarlo,
    /// End-to-end request service time.
    Total,
}

impl Stage {
    pub const ALL: [Stage; 9] = [
        Stage::QueueWait,
        Stage::Admission,
        Stage::SelCacheProbe,
        Stage::SamplePass,
        Stage::Exec,
        Stage::FitCacheProbe,
        Stage::Fit,
        Stage::MonteCarlo,
        Stage::Total,
    ];

    fn idx(self) -> usize {
        match self {
            Stage::QueueWait => 0,
            Stage::Admission => 1,
            Stage::SelCacheProbe => 2,
            Stage::SamplePass => 3,
            Stage::Exec => 4,
            Stage::FitCacheProbe => 5,
            Stage::Fit => 6,
            Stage::MonteCarlo => 7,
            Stage::Total => 8,
        }
    }

    /// Stable label used in metric names, JSONL events, and exports.
    pub fn label(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Admission => "admission",
            Stage::SelCacheProbe => "sel_cache_probe",
            Stage::SamplePass => "sample_pass",
            Stage::Exec => "exec",
            Stage::FitCacheProbe => "fit_cache_probe",
            Stage::Fit => "fit",
            Stage::MonteCarlo => "monte_carlo",
            Stage::Total => "total",
        }
    }
}

/// Accumulated seconds per stage for one request. Attached to
/// `PredictResponse` when span recording is on — deliberately *outside*
/// the bit-deterministic result fields.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageTimings {
    seconds: [f64; 9],
}

impl StageTimings {
    pub fn get(&self, stage: Stage) -> f64 {
        self.seconds[stage.idx()]
    }

    pub fn add(&mut self, stage: Stage, seconds: f64) {
        self.seconds[stage.idx()] += seconds;
    }

    /// Stages with nonzero accumulated time, in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, f64)> + '_ {
        Stage::ALL
            .iter()
            .map(|&s| (s, self.get(s)))
            .filter(|&(_, v)| v > 0.0)
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<StageTimings>> = const { RefCell::new(None) };
}

/// The per-thread recorder. Constructed by [`SpanRecorder::begin`],
/// harvested by [`SpanRecorder::finish`]; dropping it without finishing
/// discards the partial timings (panic-safe by construction — the
/// thread-local is simply overwritten by the next request).
pub struct SpanRecorder(());

impl SpanRecorder {
    /// Installs a fresh recorder on this thread, replacing any stale one.
    pub fn begin() -> SpanRecorder {
        ACTIVE.with(|a| *a.borrow_mut() = Some(StageTimings::default()));
        SpanRecorder(())
    }

    /// Uninstalls the recorder and returns what it captured.
    pub fn finish(self) -> StageTimings {
        ACTIVE.with(|a| a.borrow_mut().take()).unwrap_or_default()
    }
}

/// True if a recorder is active on this thread.
pub fn active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Adds pre-measured seconds to a stage (used where the caller already
/// holds the interval, e.g. queue wait measured from the enqueue stamp).
pub fn record(stage: Stage, seconds: f64) {
    ACTIVE.with(|a| {
        if let Some(t) = a.borrow_mut().as_mut() {
            t.add(stage, seconds);
        }
    });
}

/// Runs `f`, attributing its wall-clock time to `stage` if a recorder is
/// active. Inactive cost is one thread-local flag check — no clock read,
/// no allocation — so instrumented code stays on budget with spans off.
/// Nesting is fine: the borrow is not held across `f`.
pub fn timed<T>(stage: Stage, f: impl FnOnce() -> T) -> T {
    if !active() {
        return f();
    }
    let t0 = Instant::now();
    let out = f();
    record(stage, t0.elapsed().as_secs_f64());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_is_transparent_without_a_recorder() {
        assert!(!active());
        let v = timed(Stage::SamplePass, || 41 + 1);
        assert_eq!(v, 42);
        assert!(!active());
    }

    #[test]
    fn recorder_captures_nested_stages() {
        let span = SpanRecorder::begin();
        assert!(active());
        let v = timed(Stage::SamplePass, || {
            timed(Stage::Exec, || std::hint::black_box(1 + 1))
        });
        assert_eq!(v, 2);
        record(Stage::QueueWait, 0.25);
        let t = span.finish();
        assert!(!active());
        assert!(t.get(Stage::SamplePass) > 0.0);
        assert!(t.get(Stage::Exec) > 0.0);
        // Nested: exec accrues inside the sample pass, never above it.
        assert!(t.get(Stage::Exec) <= t.get(Stage::SamplePass));
        assert_eq!(t.get(Stage::QueueWait), 0.25);
        assert_eq!(t.get(Stage::Fit), 0.0);
        let stages: Vec<Stage> = t.iter().map(|(s, _)| s).collect();
        assert_eq!(
            stages,
            vec![Stage::QueueWait, Stage::SamplePass, Stage::Exec]
        );
    }

    #[test]
    fn begin_replaces_a_stale_recorder() {
        let _stale = SpanRecorder::begin();
        record(Stage::Total, 123.0);
        let fresh = SpanRecorder::begin();
        let t = fresh.finish();
        assert_eq!(t.get(Stage::Total), 0.0);
        assert!(!active());
    }
}
