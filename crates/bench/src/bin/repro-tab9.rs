//! Regenerates the paper's Table 9 (see DESIGN.md experiment index).

fn main() {
    let mut lab = uaq_bench::lab_from_env();
    print!("{}", uaq_experiments::report::table9(&mut lab));
}
