//! Diagnostic dump: per-query predicted mean/σ, actual, error, and the
//! variance breakdown — for tuning the substrate, not part of the paper.

use uaq_core::{Predictor, PredictorConfig};
use uaq_cost::{
    calibrate, simulate_actual_time, CalibrationConfig, CostUnit, NodeCostContext, SimConfig,
};
use uaq_datagen::DbPreset;
use uaq_engine::{execute_full, plan_query};
use uaq_experiments::Machine;
use uaq_stats::Rng;
use uaq_workloads::Benchmark;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = match args.get(1).map(String::as_str) {
        Some("seljoin") => Benchmark::SelJoin,
        Some("tpch") => Benchmark::Tpch,
        _ => Benchmark::Micro,
    };
    let sr: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.05);

    let seed = 20140827u64;
    let catalog = DbPreset::Uniform1G.build(seed ^ 0xD8);
    let machine = Machine::Pc1;
    let profile = machine.profile();
    let mut crng = Rng::new(seed ^ 0x9E37);
    let units = calibrate(&profile, &CalibrationConfig::default(), &mut crng);
    println!("calibrated vs true units:");
    for u in CostUnit::ALL {
        println!(
            "  {u}: cal mean {:.6} (true {:.6}), cal sd {:.6} (true {:.6})",
            units[u].mean(),
            profile.true_units()[u].mean(),
            units[u].std_dev(),
            profile.true_units()[u].std_dev()
        );
    }

    let mut rng = Rng::new(seed ^ 0xABC);
    let queries = bench.queries(&catalog, 4, &mut rng);
    let samples = catalog.draw_samples(sr, 2, &mut rng);
    let predictor = Predictor::new(units, PredictorConfig::default());

    println!(
        "\n{:<24} {:>10} {:>10} {:>10} {:>8} | {:>10} {:>10} {:>10} {:>10}",
        "query", "pred", "actual", "err", "sigma", "unitVar", "selExact", "covBnd", "interact"
    );
    for q in &queries {
        let plan = plan_query(q, &catalog);
        let out = execute_full(&plan, &catalog);
        let ctxs = NodeCostContext::build_all(&plan, &catalog);
        let p = predictor.predict(&plan, &catalog, &samples);
        let actual = simulate_actual_time(
            &plan,
            &ctxs,
            &out.traces,
            &profile,
            &SimConfig::default(),
            &mut rng,
        );
        println!(
            "{:<24} {:>10.2} {:>10.2} {:>10.2} {:>8.2} | {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            q.name,
            p.mean_ms(),
            actual.mean_ms,
            (p.mean_ms() - actual.mean_ms).abs(),
            p.std_dev_ms(),
            p.breakdown.unit_variance.sqrt(),
            p.breakdown.selectivity_exact.max(0.0).sqrt(),
            p.breakdown.covariance_bounds.max(0.0).sqrt(),
            p.breakdown.interaction.max(0.0).sqrt()
        );
    }
}
