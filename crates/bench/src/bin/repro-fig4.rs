//! Regenerates the paper's fig4 (see DESIGN.md experiment index).

fn main() {
    let mut lab = uaq_bench::lab_from_env();
    print!("{}", uaq_experiments::report::fig4(&mut lab));
}
