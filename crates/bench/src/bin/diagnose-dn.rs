//! Diagnostic: D_n and the Pr_n vs Pr direction for one cheap cell.

use uaq_datagen::DbPreset;
use uaq_experiments::{metrics, CellConfig, Machine};
use uaq_workloads::Benchmark;

fn main() {
    let mut lab = uaq_bench::lab_from_env();
    for bench in [Benchmark::Micro, Benchmark::SelJoin] {
        let cell = CellConfig::new(DbPreset::Uniform1G, Machine::Pc1, bench, 0.05);
        let o = lab.run_cell(&cell);
        let dn = metrics::distribution_distance(&o);
        let (rs, rp) = metrics::correlation(&o);
        println!("{}: D_n={dn:.4} r_s={rs:.4} r_p={rp:.4}", bench.label());
        for a in [0.5, 1.0, 2.0] {
            println!(
                "  alpha={a}: Pr_n={:.3} Pr={:.3}",
                metrics::empirical_pr(&o, a),
                uaq_stats::model_pr(a)
            );
        }
    }
}
