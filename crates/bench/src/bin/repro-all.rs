//! Regenerates every table and figure of the paper's evaluation in one run
//! (a full Lab is shared, so databases / calibrations / full executions are
//! computed once).

use uaq_experiments::report;

fn main() {
    let mut lab = uaq_bench::lab_from_env();
    for (name, f) in [
        (
            "fig2",
            report::fig2 as fn(&mut uaq_experiments::Lab) -> String,
        ),
        ("fig3", report::fig3),
        ("fig4", report::fig4),
        ("fig5", report::fig5),
        ("fig6", report::fig6),
        ("fig8", report::fig8),
        ("fig9", report::fig9),
        ("fig10", report::fig10),
        ("fig11", report::fig11),
        ("fig12", report::fig12),
        ("tab4", report::table4),
        ("tab5", report::table5),
        ("tab6", report::table6),
        ("tab7", report::table7),
        ("tab8", report::table8),
        ("tab9", report::table9),
    ] {
        println!("==================== {name} ====================");
        println!("{}", f(&mut lab));
    }
}
