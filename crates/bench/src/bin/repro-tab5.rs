//! Regenerates the paper's Table 5 (see DESIGN.md experiment index).

fn main() {
    let mut lab = uaq_bench::lab_from_env();
    print!("{}", uaq_experiments::report::table5(&mut lab));
}
