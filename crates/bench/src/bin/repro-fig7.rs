//! Figure 7 / §6.3.2 made concrete: the paper's illustration argues there
//! is no single "true" predicted distribution — the model outputs a
//! *different* distribution D_i for each sample set S_i, because the
//! distribution describes the estimator's uncertainty about *its own*
//! point estimate μ_i. This binary measures exactly that, and contrasts it
//! with the one-stage Monte-Carlo alternative of Appendix B.

use uaq_core::{monte_carlo_prediction, Predictor, PredictorConfig};
use uaq_cost::{calibrate, CalibrationConfig};
use uaq_datagen::DbPreset;
use uaq_engine::plan_query;
use uaq_experiments::Machine;
use uaq_stats::Rng;

fn main() {
    let seed = uaq_bench::DEFAULT_SEED;
    let catalog = DbPreset::Uniform1G.build(seed ^ 0xD8);
    let mut rng = Rng::new(seed ^ 0x777);
    let units = calibrate(
        &Machine::Pc1.profile(),
        &CalibrationConfig::default(),
        &mut rng,
    );
    let predictor = Predictor::new(units, PredictorConfig::default());
    let mut qrng = Rng::new(seed ^ 0x778);
    let plan = plan_query(&uaq_workloads::seljoin::sj3(&mut qrng), &catalog);

    println!("Figure 7 (measured): per-sample-set distributions D_i for one query\n");
    println!(
        "{:<10} {:>12} {:>12}",
        "sample set", "mu_i (ms)", "sigma_i (ms)"
    );
    println!("{}", "-".repeat(38));
    let mut mus = Vec::new();
    for i in 0..8 {
        let samples = catalog.draw_samples(0.03, 2, &mut rng);
        let p = predictor.predict(&plan, &catalog, &samples);
        println!(
            "S_{:<8} {:>12.2} {:>12.2}",
            i + 1,
            p.mean_ms(),
            p.std_dev_ms()
        );
        mus.push(p.mean_ms());
    }
    println!(
        "\nthe predicted distribution is NOT unique: each sample set yields its\n\
         own (mu_i, sigma_i) — \"using different samples will result in\n\
         different D's\" (§6.3.2)\n"
    );

    let mc = monte_carlo_prediction(&predictor, &plan, &catalog, 0.03, 60, &mut rng);
    println!(
        "one-stage Monte-Carlo alternative (Appendix B), 60 sample draws:\n  \
         point-estimate spread: mean {:.2} ms, sigma {:.2} ms\n  \
         [p10, p90] = [{:.2}, {:.2}] ms",
        mc.mean_ms(),
        mc.std_dev_ms(),
        mc.quantile(0.1),
        mc.quantile(0.9)
    );
    println!(
        "\nthe analytic sigma_i above should be commensurate with this spread\n\
         (plus the cost-unit fluctuation component the Monte-Carlo run cannot\n\
         see) — at 1/60th of the sampling cost per prediction"
    );
}
