//! Regenerates the paper's Table 8 (see DESIGN.md experiment index).

fn main() {
    let mut lab = uaq_bench::lab_from_env();
    print!("{}", uaq_experiments::report::table8(&mut lab));
}
