//! Ablation (DESIGN.md note 3): how much does the quadratic C4'
//! approximation of the sort operator's `N log N` cost really cost?
//! We compare the fitted quadratic against the exact oracle on and around
//! the `[μ ± 3σ]` fitting interval, for several selectivity regimes.

use uaq_cost::{fit_cost_function, CostUnit, FitConfig, NodeCostContext};
use uaq_datagen::DbPreset;
use uaq_engine::{plan_query, Pred, QuerySpec, SortOrder, TableRef};
use uaq_stats::Normal;
use uaq_storage::Value;

fn main() {
    let catalog = DbPreset::Uniform1G.build(uaq_bench::DEFAULT_SEED ^ 0xD8);
    let spec = QuerySpec::scan(
        "sorted-scan",
        TableRef::new("lineitem", Pred::le("l_shipdate", Value::Int(1500))),
    )
    .with_order_by(vec![("l_shipdate".into(), SortOrder::Asc)]);
    let plan = plan_query(&spec, &catalog);
    let sort_id = plan.root();
    let ctx = NodeCostContext::build(&plan, sort_id, &catalog);

    println!("Ablation: quadratic C4' fit of the sort's N·log N cost (c_o counts)\n");
    println!(
        "{:<28} {:>14} {:>14} {:>12}",
        "input X_l ~ N(mu, sd^2)", "max rel err", "rel err @ mu", "err @ 3sigma"
    );
    println!("{}", "-".repeat(72));
    for (mu, sd) in [
        (0.1, 0.01),
        (0.3, 0.02),
        (0.5, 0.05),
        (0.8, 0.02),
        (0.5, 0.005),
    ] {
        let xl = Normal::new(mu, sd * sd);
        let fit = fit_cost_function(
            &ctx,
            CostUnit::CpuOp,
            &xl,
            &Normal::point(0.0),
            &Normal::point(0.0),
            &FitConfig::default(),
        )
        .expect("sort exercises c_o");
        let rel = |x: f64| {
            let truth = ctx.counts(x, 0.0, 0.0)[CostUnit::CpuOp];
            ((fit.eval(x, 0.0, 0.0) - truth) / truth).abs()
        };
        let mut max_rel: f64 = 0.0;
        for i in 0..=60 {
            let x = (mu - 3.0 * sd + 6.0 * sd * i as f64 / 60.0).clamp(1e-9, 1.0);
            max_rel = max_rel.max(rel(x));
        }
        println!(
            "N({mu:.2}, {sd:.3}^2){:<10} {:>13.2e} {:>14.2e} {:>12.2e}",
            "",
            max_rel,
            rel(mu),
            rel((mu + 3.0 * sd).min(1.0))
        );
    }
    println!(
        "\ninside the 3σ fitting window the quadratic tracks N·log N to a small\n\
         fraction of a percent — the paper's C4' justification holds on this oracle"
    );
}
