//! Ablation (DESIGN.md note 1): the paper models the cost units as *shared*
//! per-query system state — `t_q ≈ Σ_c g_c·c` with one `c` per unit per run.
//! What if the world instead draws independent unit values per operator?
//! The shared-state variance term `σ_c²(Σ_i E[f_ic])²` then over-counts
//! (independent fluctuations partially cancel), and the correlation between
//! predicted σ and actual error should degrade.

use uaq_core::{Predictor, PredictorConfig};
use uaq_cost::{calibrate, simulate_actual_time, CalibrationConfig, NodeCostContext, SimConfig};
use uaq_datagen::DbPreset;
use uaq_engine::{execute_full, plan_query};
use uaq_experiments::Machine;
use uaq_stats::{pearson, spearman, Rng};
use uaq_workloads::Benchmark;

fn main() {
    let seed = uaq_bench::DEFAULT_SEED;
    let catalog = DbPreset::Uniform1G.build(seed ^ 0xD8);
    let profile = Machine::Pc1.profile();
    let mut rng = Rng::new(seed ^ 0x9E37);
    let units = calibrate(&profile, &CalibrationConfig::default(), &mut rng);
    let predictor = Predictor::new(units, PredictorConfig::default());
    let mut qrng = Rng::new(seed ^ 0xB0B);
    let specs = Benchmark::Micro.queries(&catalog, 1, &mut qrng);
    let samples = catalog.draw_samples(0.05, 2, &mut qrng);

    println!("Ablation: shared vs per-operator cost-unit draws (MICRO, U-1G, PC1, SR=0.05)\n");
    println!("{:<22} {:>8} {:>8}", "world", "r_s", "r_p");
    println!("{}", "-".repeat(40));
    for (label, per_op) in [("shared (paper model)", false), ("per-operator", true)] {
        let sim = SimConfig {
            per_operator_unit_draws: per_op,
            ..Default::default()
        };
        let mut arng = Rng::new(seed ^ 0xCAFE);
        let mut sigmas = Vec::new();
        let mut errors = Vec::new();
        for spec in &specs {
            let plan = plan_query(spec, &catalog);
            let p = predictor.predict(&plan, &catalog, &samples);
            let out = execute_full(&plan, &catalog);
            let ctxs = NodeCostContext::build_all(&plan, &catalog);
            let actual = simulate_actual_time(&plan, &ctxs, &out.traces, &profile, &sim, &mut arng);
            sigmas.push(p.std_dev_ms());
            errors.push((p.mean_ms() - actual.mean_ms).abs());
        }
        println!(
            "{:<22} {:>8.4} {:>8.4}",
            label,
            spearman(&sigmas, &errors),
            pearson(&sigmas, &errors)
        );
    }
    println!(
        "\nwith per-operator draws the predictor's shared-state variance model\n\
         over-claims σ for multi-operator plans — correlation drops accordingly"
    );
}
