//! Regenerates the paper's fig9 (see DESIGN.md experiment index).

fn main() {
    let mut lab = uaq_bench::lab_from_env();
    print!("{}", uaq_experiments::report::fig9(&mut lab));
}
