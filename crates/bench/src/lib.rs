//! # uaq-bench
//!
//! Reproduction binaries (one per paper table/figure; run with
//! `cargo run -p uaq-bench --release --bin repro-<name>`) and Criterion
//! micro-benchmarks for the predictor pipeline.

use uaq_experiments::Lab;

/// Default experiment seed; override with the `UAQ_SEED` environment
/// variable to check robustness of the shapes across randomness.
pub const DEFAULT_SEED: u64 = 20140827; // the paper's arXiv date

/// Builds the experiment lab honoring `UAQ_SEED`.
pub fn lab_from_env() -> Lab {
    let seed = std::env::var("UAQ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    Lab::new(seed)
}
