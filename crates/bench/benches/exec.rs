//! Criterion benchmarks for the execution data plane in isolation: raw
//! full-mode and sample-mode plan execution throughput, columnar executor
//! vs. the row-based reference (`exec_row`), so future PRs can track the
//! data plane without the estimator/predictor layers on top.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use uaq_datagen::GenConfig;
use uaq_engine::{
    execute_full, execute_full_rows, execute_on_samples, execute_on_samples_rows, plan_query,
    JoinStep, Plan, Pred, QuerySpec, TableRef,
};
use uaq_stats::Rng;
use uaq_storage::{Catalog, Value};

fn scan_plan(catalog: &Catalog) -> Plan {
    plan_query(
        &QuerySpec::scan(
            "scan",
            TableRef::new("lineitem", Pred::le("l_shipdate", Value::Int(1500))),
        ),
        catalog,
    )
}

/// Selective filter chain over a selective scan: the late-materialization
/// poster child — every kept row used to pay a fresh gather of all 16
/// lineitem columns at the scan and again at each filter.
fn filter_plan() -> Plan {
    let mut b = uaq_engine::PlanBuilder::new();
    let s = b.seq_scan("lineitem", Pred::le("l_shipdate", Value::Int(1500)));
    let f = b.filter(s, Pred::gt("l_quantity", Value::Float(25.0)));
    let g = b.filter(f, Pred::lt("l_extendedprice", Value::Float(30000.0)));
    b.build(g)
}

/// Sort above a selective scan: pre-PR 9 the sort re-gathered every column
/// to apply the permutation.
fn sort_plan() -> Plan {
    let mut b = uaq_engine::PlanBuilder::new();
    let s = b.seq_scan("orders", Pred::lt("o_orderdate", Value::Int(1200)));
    let srt = b.sort(
        s,
        vec![("o_totalprice".into(), uaq_engine::SortOrder::Desc)],
    );
    b.build(srt)
}

fn join3_plan(catalog: &Catalog) -> Plan {
    plan_query(
        &QuerySpec::scan(
            "join3",
            TableRef::new("customer", Pred::eq("c_mktsegment", Value::str("BUILDING"))),
        )
        .with_joins(vec![
            JoinStep::new(
                TableRef::new("orders", Pred::lt("o_orderdate", Value::Int(1200))),
                "c_custkey",
                "o_custkey",
            ),
            JoinStep::new(
                TableRef::new("lineitem", Pred::gt("l_shipdate", Value::Int(1200))),
                "o_orderkey",
                "l_orderkey",
            ),
        ]),
        catalog,
    )
}

fn bench_exec(c: &mut Criterion) {
    let catalog = GenConfig::new(0.002, 0.0, 42).build();
    let mut rng = Rng::new(7);
    let samples = catalog.draw_samples(0.05, 2, &mut rng);
    let scan = scan_plan(&catalog);
    let join3 = join3_plan(&catalog);
    let filter = filter_plan();
    let sort = sort_plan();

    let mut group = c.benchmark_group("exec");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);

    group.bench_function("full/scan", |b| b.iter(|| execute_full(&scan, &catalog)));
    group.bench_function("full/filter", |b| {
        b.iter(|| execute_full(&filter, &catalog))
    });
    group.bench_function("full/sort", |b| b.iter(|| execute_full(&sort, &catalog)));
    group.bench_function("full/join3", |b| b.iter(|| execute_full(&join3, &catalog)));
    group.bench_function("sample/scan", |b| {
        b.iter(|| execute_on_samples(&scan, &samples))
    });
    group.bench_function("sample/filter", |b| {
        b.iter(|| execute_on_samples(&filter, &samples))
    });
    group.bench_function("sample/join3", |b| {
        b.iter(|| execute_on_samples(&join3, &samples))
    });

    // The row-based reference on the same plans prices the columnar win.
    group.bench_function("rowref/full/join3", |b| {
        b.iter(|| execute_full_rows(&join3, &catalog))
    });
    group.bench_function("rowref/sample/join3", |b| {
        b.iter(|| execute_on_samples_rows(&join3, &samples))
    });
    group.finish();
}

/// Micro-bench for the typed gather fast paths: `ColumnData::gather` /
/// `gather2` move payloads with one typed loop per column, vs. the per-cell
/// `Value` round-trip (`value(i)` + `push`) they replaced.
fn bench_column_gather(c: &mut Criterion) {
    use std::sync::Arc;
    use uaq_storage::{ColumnData, ColumnRef, ColumnSlice};

    let n = 65_536usize;
    let ints = ColumnRef::new(ColumnData::Int(
        (0..n as i64).map(|i| i.wrapping_mul(37)).collect(),
    ));
    let sel1: Arc<Vec<u32>> = Arc::new((0..n as u32).filter(|i| i % 3 != 0).collect());
    let sel2: Arc<Vec<u32>> = Arc::new((0..sel1.len() as u32).filter(|i| i % 2 == 0).collect());
    let depth1 = ColumnSlice::selected(ints.clone(), sel1.clone());
    let depth2 = depth1.select(&sel2);

    let mut group = c.benchmark_group("column_gather");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(50);

    group.bench_function("typed/depth1", |b| b.iter(|| depth1.to_dense()));
    group.bench_function("typed/depth2", |b| b.iter(|| depth2.to_dense()));
    group.bench_function("value_roundtrip/depth1", |b| {
        b.iter(|| {
            let mut out = ColumnData::with_capacity(depth1.ty(), depth1.len());
            for i in 0..depth1.len() {
                out.push(&depth1.value(i));
            }
            out
        })
    });
    group.finish();
}

criterion_group!(benches, bench_exec, bench_column_gather);
criterion_main!(benches);
