//! Criterion benchmarks for the execution data plane in isolation: raw
//! full-mode and sample-mode plan execution throughput, columnar executor
//! vs. the row-based reference (`exec_row`), so future PRs can track the
//! data plane without the estimator/predictor layers on top.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use uaq_datagen::GenConfig;
use uaq_engine::{
    execute_full, execute_full_rows, execute_on_samples, execute_on_samples_rows, plan_query,
    JoinStep, Plan, Pred, QuerySpec, TableRef,
};
use uaq_stats::Rng;
use uaq_storage::{Catalog, Value};

fn scan_plan(catalog: &Catalog) -> Plan {
    plan_query(
        &QuerySpec::scan(
            "scan",
            TableRef::new("lineitem", Pred::le("l_shipdate", Value::Int(1500))),
        ),
        catalog,
    )
}

fn join3_plan(catalog: &Catalog) -> Plan {
    plan_query(
        &QuerySpec::scan(
            "join3",
            TableRef::new("customer", Pred::eq("c_mktsegment", Value::str("BUILDING"))),
        )
        .with_joins(vec![
            JoinStep::new(
                TableRef::new("orders", Pred::lt("o_orderdate", Value::Int(1200))),
                "c_custkey",
                "o_custkey",
            ),
            JoinStep::new(
                TableRef::new("lineitem", Pred::gt("l_shipdate", Value::Int(1200))),
                "o_orderkey",
                "l_orderkey",
            ),
        ]),
        catalog,
    )
}

fn bench_exec(c: &mut Criterion) {
    let catalog = GenConfig::new(0.002, 0.0, 42).build();
    let mut rng = Rng::new(7);
    let samples = catalog.draw_samples(0.05, 2, &mut rng);
    let scan = scan_plan(&catalog);
    let join3 = join3_plan(&catalog);

    let mut group = c.benchmark_group("exec");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);

    group.bench_function("full/scan", |b| b.iter(|| execute_full(&scan, &catalog)));
    group.bench_function("full/join3", |b| b.iter(|| execute_full(&join3, &catalog)));
    group.bench_function("sample/scan", |b| {
        b.iter(|| execute_on_samples(&scan, &samples))
    });
    group.bench_function("sample/join3", |b| {
        b.iter(|| execute_on_samples(&join3, &samples))
    });

    // The row-based reference on the same plans prices the columnar win.
    group.bench_function("rowref/full/join3", |b| {
        b.iter(|| execute_full_rows(&join3, &catalog))
    });
    group.bench_function("rowref/sample/join3", |b| {
        b.iter(|| execute_on_samples_rows(&join3, &samples))
    });
    group.finish();
}

criterion_group!(benches, bench_exec);
criterion_main!(benches);
