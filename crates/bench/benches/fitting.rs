//! Criterion benchmarks for cost-function fitting (§4.2): NNLS solves and
//! per-node grid fits, including the ablation over the grid width `W` that
//! DESIGN.md calls out (design note 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use uaq_cost::{fit_node, CostUnit, FitConfig, NodeCostContext};
use uaq_datagen::GenConfig;
use uaq_engine::{plan_query, JoinStep, Pred, QuerySpec, SortOrder, TableRef};
use uaq_stats::{nnls, Matrix, Normal, Rng};
use uaq_storage::Value;

fn bench_nnls(c: &mut Criterion) {
    let mut rng = Rng::new(11);
    let a = Matrix::from_rows(
        (0..81)
            .map(|_| (0..4).map(|_| rng.f64()).collect())
            .collect(),
    );
    let y: Vec<f64> = (0..81).map(|_| rng.f64() * 100.0).collect();
    let mut group = c.benchmark_group("nnls");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(50);
    group.bench_function("81x4", |b| b.iter(|| nnls(&a, &y)));
    group.finish();
}

fn bench_fit_node(c: &mut Criterion) {
    let catalog = GenConfig::new(0.002, 0.0, 42).build();
    let join_plan = plan_query(
        &QuerySpec::scan("j", TableRef::plain("orders")).with_joins(vec![JoinStep::new(
            TableRef::plain("lineitem"),
            "o_orderkey",
            "l_orderkey",
        )]),
        &catalog,
    );
    let sort_plan = plan_query(
        &QuerySpec::scan(
            "s",
            TableRef::new("lineitem", Pred::le("l_shipdate", Value::Int(1200))),
        )
        .with_order_by(vec![("l_shipdate".into(), SortOrder::Asc)]),
        &catalog,
    );
    let join_ctx = NodeCostContext::build(&join_plan, join_plan.root(), &catalog);
    let sort_ctx = NodeCostContext::build(&sort_plan, sort_plan.root(), &catalog);
    let xl = Normal::new(0.4, 0.001);
    let xr = Normal::new(0.5, 0.002);
    let own = Normal::new(0.2, 0.0005);

    let mut group = c.benchmark_group("fit_node");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(50);
    // Grid-width ablation: W controls the number of oracle probes
    // ((W+1)² for binary forms).
    for w in [4usize, 8, 16] {
        let cfg = FitConfig { grid_w: w };
        group.bench_with_input(BenchmarkId::new("join_c6", w), &w, |b, _| {
            b.iter(|| fit_node(&join_ctx, &xl, &xr, &own, &cfg))
        });
        group.bench_with_input(BenchmarkId::new("sort_c4", w), &w, |b, _| {
            b.iter(|| fit_node(&sort_ctx, &xl, &xr, &own, &cfg))
        });
    }
    group.finish();

    // Sanity outside the timing loop: the fitted join function must have a
    // ProductBoth c_t slot and the sort a QuadLeft c_o slot.
    let cfg = FitConfig::default();
    let jf = fit_node(&join_ctx, &xl, &xr, &own, &cfg);
    assert!(jf[CostUnit::CpuTuple.idx()].is_some());
    let sf = fit_node(&sort_ctx, &xl, &xr, &own, &cfg);
    assert!(sf[CostUnit::CpuOp.idx()].is_some());
}

criterion_group!(benches, bench_nnls, bench_fit_node);
criterion_main!(benches);
