//! Criterion benchmarks for the Var[t_q] computation (Algorithm 3) and the
//! covariance-bound machinery — plus the bound-choice ablation of DESIGN.md
//! (design note 2): how expensive are B1's restricted variances versus the
//! plain Cauchy–Schwarz B2?

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use uaq_core::{Predictor, PredictorConfig, Variant};
use uaq_cost::{calibrate, CalibrationConfig, HardwareProfile};
use uaq_datagen::GenConfig;
use uaq_engine::{execute_on_samples, plan_query};
use uaq_selest::{cov_bounds, estimate_selectivities, shared_leaves};
use uaq_stats::Rng;

fn bench_variance(c: &mut Criterion) {
    let catalog = GenConfig::new(0.002, 0.0, 42).build();
    let mut rng = Rng::new(3);
    let units = calibrate(
        &HardwareProfile::pc1(),
        &CalibrationConfig::default(),
        &mut rng,
    );
    let samples = catalog.draw_samples(0.05, 2, &mut rng);
    // A deep plan: TPC-H Q5's 6-way join.
    let plan = plan_query(&uaq_workloads::tpch::q5(&mut rng), &catalog);

    let mut group = c.benchmark_group("variance");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);

    // Full prediction under each variant: the difference All − NoCov prices
    // the covariance-bound machinery.
    for variant in [
        Variant::All,
        Variant::NoCovariance,
        Variant::NoSelectivityVariance,
    ] {
        let predictor = Predictor::new(
            units,
            PredictorConfig {
                variant,
                ..Default::default()
            },
        );
        group.bench_function(variant.label().replace(' ', "_"), |b| {
            b.iter(|| predictor.predict(&plan, &catalog, &samples))
        });
    }
    group.finish();

    // Raw bound computation between a deep descendant-ancestor pair.
    let outcome = execute_on_samples(&plan, &samples);
    let estimates = estimate_selectivities(&plan, &outcome, &samples, &catalog);
    let pairs: Vec<_> = plan
        .node_ids()
        .flat_map(|a| plan.node_ids().map(move |b| (a, b)))
        .filter_map(|(a, b)| shared_leaves(&plan, a, b).map(|s| (a, b, s)))
        .collect();
    assert!(!pairs.is_empty());
    let mut group = c.benchmark_group("cov_bounds");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(50);
    group.bench_function("all_path_pairs", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|(a, bn, s)| {
                    let (desc, anc) = if plan.is_descendant(*a, *bn) {
                        (*a, *bn)
                    } else {
                        (*bn, *a)
                    };
                    cov_bounds(&estimates[desc], &estimates[anc], s).tightest()
                })
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_variance);
criterion_main!(benches);
