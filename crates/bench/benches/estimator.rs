//! Criterion benchmarks for the sampling-based selectivity estimator
//! (Algorithm 1): the one-pass sample execution with provenance and the
//! `ρ_n`/`S_n²` computation, across sampling ratios — the efficiency story
//! of §3.2.2 / Figure 9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use uaq_datagen::GenConfig;
use uaq_engine::{
    execute_full, execute_on_samples, plan_query, JoinStep, Pred, QuerySpec, TableRef,
};
use uaq_selest::estimate_selectivities;
use uaq_stats::Rng;
use uaq_storage::Value;

fn bench_sample_pass(c: &mut Criterion) {
    let catalog = GenConfig::new(0.002, 0.0, 42).build();
    let plan = plan_query(
        &QuerySpec::scan(
            "j",
            TableRef::new("orders", Pred::lt("o_orderdate", Value::Int(1500))),
        )
        .with_joins(vec![JoinStep::new(
            TableRef::plain("lineitem"),
            "o_orderkey",
            "l_orderkey",
        )]),
        &catalog,
    );

    let mut group = c.benchmark_group("estimator");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);

    for sr in [0.01, 0.05, 0.1] {
        let mut rng = Rng::new(5);
        let samples = catalog.draw_samples(sr, 2, &mut rng);
        group.bench_with_input(BenchmarkId::new("sample_pass", sr), &sr, |b, _| {
            b.iter(|| execute_on_samples(&plan, &samples))
        });
        let outcome = execute_on_samples(&plan, &samples);
        group.bench_with_input(BenchmarkId::new("rho_and_s2", sr), &sr, |b, _| {
            b.iter(|| estimate_selectivities(&plan, &outcome, &samples, &catalog))
        });
    }

    // The denominator of the relative-overhead metric.
    group.bench_function("full_execution", |b| {
        b.iter(|| execute_full(&plan, &catalog))
    });
    group.finish();
}

criterion_group!(benches, bench_sample_pass);
criterion_main!(benches);
