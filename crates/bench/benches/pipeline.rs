//! Criterion benchmarks for the prediction pipeline: what does
//! uncertainty-aware prediction cost? (The paper's efficiency claim is that
//! the overhead over the point predictor of [48] is negligible — here we
//! measure the absolute costs of each stage.)

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;
use uaq_core::{Predictor, PredictorConfig};
use uaq_cost::{calibrate, CalibrationConfig, HardwareProfile};
use uaq_datagen::GenConfig;
use uaq_engine::{plan_query, JoinStep, Pred, QuerySpec, TableRef};
use uaq_stats::Rng;
use uaq_storage::Value;

fn bench_predict(c: &mut Criterion) {
    let catalog = GenConfig::new(0.002, 0.0, 42).build();
    let mut rng = Rng::new(7);
    let units = calibrate(
        &HardwareProfile::pc1(),
        &CalibrationConfig::default(),
        &mut rng,
    );
    let samples = catalog.draw_samples(0.05, 2, &mut rng);
    let predictor = Predictor::new(units, PredictorConfig::default());

    let scan = plan_query(
        &QuerySpec::scan(
            "scan",
            TableRef::new("lineitem", Pred::le("l_shipdate", Value::Int(1500))),
        ),
        &catalog,
    );
    let join3 = plan_query(
        &QuerySpec::scan(
            "join3",
            TableRef::new("customer", Pred::eq("c_mktsegment", Value::str("BUILDING"))),
        )
        .with_joins(vec![
            JoinStep::new(
                TableRef::new("orders", Pred::lt("o_orderdate", Value::Int(1200))),
                "c_custkey",
                "o_custkey",
            ),
            JoinStep::new(
                TableRef::new("lineitem", Pred::gt("l_shipdate", Value::Int(1200))),
                "o_orderkey",
                "l_orderkey",
            ),
        ]),
        &catalog,
    );
    let tpch_q5 = plan_query(&uaq_workloads::tpch::q5(&mut rng), &catalog);

    let mut group = c.benchmark_group("predict");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    group.bench_function("scan", |b| {
        b.iter(|| predictor.predict(&scan, &catalog, &samples))
    });
    group.bench_function("three_way_join", |b| {
        b.iter(|| predictor.predict(&join3, &catalog, &samples))
    });
    group.bench_function("tpch_q5", |b| {
        b.iter(|| predictor.predict(&tpch_q5, &catalog, &samples))
    });
    group.finish();
}

fn bench_calibration(c: &mut Criterion) {
    let profile = HardwareProfile::pc2();
    let mut group = c.benchmark_group("calibration");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    group.bench_function("five_units", |b| {
        b.iter_batched(
            || Rng::new(99),
            |mut rng| calibrate(&profile, &CalibrationConfig::default(), &mut rng),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_predict, bench_calibration);
criterion_main!(benches);
