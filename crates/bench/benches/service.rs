//! Benchmarks for the serving layer: what do the two cache levels buy per
//! prediction, and how does service throughput scale with workers?
//!
//! * `service/predict_cold/*` — every iteration predicts through fresh
//!   caches (miss + fill at both levels): the baseline a first-seen
//!   request pays.
//! * `service/predict_warm/*` — fit cache pre-warmed, estimate cache off:
//!   PR 2's warm path (fits skipped, sample pass still executed).
//! * `service/predict_warm_selest/*` — both caches pre-warmed: the full
//!   warm path for a repeated query instance (sample pass *and* fits
//!   skipped; only the variance algebra runs).
//! * `service/throughput/*` — wall-clock for a 64-request mixed batch
//!   through the full service (queue + worker pool + caches), per worker
//!   count.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;
use uaq_core::{Predictor, PredictorConfig};
use uaq_cost::{calibrate, CalibrationConfig, HardwareProfile};
use uaq_datagen::GenConfig;
use uaq_engine::{plan_query, JoinStep, Plan, Pred, QuerySpec, TableRef};
use uaq_service::{
    PredictRequest, PredictionService, RetryPolicy, ServiceConfig, SharedFitCache,
    SharedSelEstCache, TenantId,
};
use uaq_stats::Rng;
use uaq_storage::{Catalog, SampleCatalog, Value};

struct Setup {
    predictor: Predictor,
    catalog: Arc<Catalog>,
    samples: Arc<SampleCatalog>,
    scan: Arc<Plan>,
    join3: Arc<Plan>,
}

fn setup() -> Setup {
    let catalog = GenConfig::new(0.002, 0.0, 42).build();
    let mut rng = Rng::new(7);
    let units = calibrate(
        &HardwareProfile::pc1(),
        &CalibrationConfig::default(),
        &mut rng,
    );
    let samples = catalog.draw_samples(0.05, 2, &mut rng);
    let scan = plan_query(
        &QuerySpec::scan(
            "scan",
            TableRef::new("lineitem", Pred::le("l_shipdate", Value::Int(1500))),
        ),
        &catalog,
    );
    let join3 = plan_query(
        &QuerySpec::scan(
            "join3",
            TableRef::new("customer", Pred::eq("c_mktsegment", Value::str("BUILDING"))),
        )
        .with_joins(vec![
            JoinStep::new(
                TableRef::new("orders", Pred::lt("o_orderdate", Value::Int(1200))),
                "c_custkey",
                "o_custkey",
            ),
            JoinStep::new(
                TableRef::new("lineitem", Pred::gt("l_shipdate", Value::Int(1200))),
                "o_orderkey",
                "l_orderkey",
            ),
        ]),
        &catalog,
    );
    Setup {
        predictor: Predictor::new(units, PredictorConfig::default()),
        catalog: Arc::new(catalog),
        samples: Arc::new(samples),
        scan: Arc::new(scan),
        join3: Arc::new(join3),
    }
}

/// Cold vs warm cache, per plan: the direct measurement of what the
/// fit cache removes from a repeated prediction.
fn bench_cache(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("service");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    for (name, plan) in [("scan", &s.scan), ("three_way_join", &s.join3)] {
        group.bench_function(BenchmarkId::new("predict_cold", name), |b| {
            // Fresh caches per iteration: every predict pays sample pass +
            // context build + grid fits (fill overhead at both levels
            // included, as in a real first-seen request).
            b.iter_batched(
                || (SharedFitCache::default(), SharedSelEstCache::default()),
                |(fit, sel)| {
                    s.predictor
                        .predict_with_caches(plan, &s.catalog, &s.samples, &fit, &sel)
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function(BenchmarkId::new("predict_warm", name), |b| {
            // PR 2's warm path: fits cached, but the sample pass still
            // runs every prediction — the cost this PR's estimate cache
            // removes.
            let cache = SharedFitCache::default();
            s.predictor
                .predict_with_cache(plan, &s.catalog, &s.samples, &cache);
            b.iter(|| {
                s.predictor
                    .predict_with_cache(plan, &s.catalog, &s.samples, &cache)
            })
        });
        group.bench_function(BenchmarkId::new("predict_warm_selest", name), |b| {
            // The full warm path: estimate cache + fit cache, the steady
            // serving state for a repeated query instance.
            let fit = SharedFitCache::default();
            let sel = SharedSelEstCache::default();
            s.predictor
                .predict_with_caches(plan, &s.catalog, &s.samples, &fit, &sel);
            b.iter(|| {
                s.predictor
                    .predict_with_caches(plan, &s.catalog, &s.samples, &fit, &sel)
            })
        });
    }
    group.finish();
}

/// Full-service throughput for a mixed 64-request batch, per worker count.
fn bench_throughput(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("service");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(15);
    let batch: Vec<Arc<Plan>> = (0..64)
        .map(|i| {
            if i % 2 == 0 {
                Arc::clone(&s.scan)
            } else {
                Arc::clone(&s.join3)
            }
        })
        .collect();
    for workers in [1usize, 2, 4] {
        let service = PredictionService::start(
            s.predictor.clone(),
            Arc::clone(&s.catalog),
            Arc::clone(&s.samples),
            ServiceConfig {
                workers,
                ..Default::default()
            },
        );
        group.bench_function(BenchmarkId::new("throughput_batch64", workers), |b| {
            b.iter(|| {
                let receivers: Vec<_> = batch
                    .iter()
                    .enumerate()
                    .map(|(i, plan)| {
                        service.submit(PredictRequest {
                            id: i as u64,
                            plan: Arc::clone(plan),
                            deadline_ms: Some(100.0),
                            tenant: TenantId::default(),
                        })
                    })
                    .collect();
                let responses: Vec<_> = receivers
                    .into_iter()
                    .map(|rx| rx.recv().expect("response"))
                    .collect();
                responses.len()
            })
        });
        service.shutdown();
    }
    group.finish();
}

/// The retry path: a 64-request batch in which every other request's
/// deadline sits in the defer band, under the terminal policy (Defer is a
/// response) vs a bounded retry policy (deferred requests park and are
/// re-decided on the completion events the admitted half generates, then
/// finally rejected). Measures the full extra cost of the deferred queue —
/// parking, per-completion re-decisions, final verdicts — on top of the
/// same prediction work.
fn bench_retry(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("service");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(15);
    // Border deadlines from warm reference predictions: Pr(T ≤ d) lands in
    // the defer band [θ/2, θ).
    let border = |plan: &Arc<Plan>| {
        let p = s.predictor.predict(plan, &s.catalog, &s.samples);
        p.mean_ms() + 0.5 * p.std_dev_ms()
    };
    let border_scan = border(&s.scan);
    let border_join = border(&s.join3);
    for (name, retry) in [
        ("terminal", RetryPolicy::terminal()),
        ("bounded3", RetryPolicy::bounded(3)),
    ] {
        let service = PredictionService::start(
            s.predictor.clone(),
            Arc::clone(&s.catalog),
            Arc::clone(&s.samples),
            ServiceConfig {
                workers: 2,
                retry,
                ..Default::default()
            },
        );
        group.bench_function(BenchmarkId::new("retry_batch64", name), |b| {
            b.iter(|| {
                let receivers: Vec<_> = (0..64)
                    .map(|i| {
                        // The first half carries border deadlines (deferred
                        // under bounded retry), the second half generous
                        // ones: each generous completion is the event that
                        // re-decides the parked half, so the bench measures
                        // the event-driven retry path, not the idle tick.
                        let (plan, border_ms) = if i % 2 == 0 {
                            (&s.scan, border_scan)
                        } else {
                            (&s.join3, border_join)
                        };
                        let deadline = if i < 32 { border_ms } else { 1e6 };
                        service.submit(PredictRequest {
                            id: i as u64,
                            plan: Arc::clone(plan),
                            deadline_ms: Some(deadline),
                            tenant: TenantId::default(),
                        })
                    })
                    .collect();
                let responses: Vec<_> = receivers
                    .into_iter()
                    .map(|rx| rx.recv().expect("every request gets a verdict"))
                    .collect();
                responses.len()
            })
        });
        service.shutdown();
    }
    group.finish();
}

/// PR 8 shard scaling: a warm 256-request batch submitted by 4 client
/// threads against the fully sharded configuration (per-worker queue
/// shards, sharded caches, snapshot-served warm path), per worker count.
/// Both cache levels are pre-warmed, so every serve takes the
/// no-contended-locks warm path — the configuration whose throughput the
/// sharding work is supposed to move.
fn bench_shard_scaling(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("service");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(15);
    let clients = 4usize;
    let per_client = 64usize;
    for workers in [1usize, 2, 4] {
        let service = Arc::new(PredictionService::start(
            s.predictor.clone(),
            Arc::clone(&s.catalog),
            Arc::clone(&s.samples),
            ServiceConfig {
                workers,
                queue_shards: 0, // per-worker shards
                ..Default::default()
            },
        ));
        // Pre-warm both cache levels for both shapes.
        for plan in [&s.scan, &s.join3] {
            service.predict_blocking(Arc::clone(plan), None);
            service.predict_blocking(Arc::clone(plan), None);
        }
        group.bench_function(BenchmarkId::new("pr8_shard_scaling", workers), |b| {
            b.iter(|| {
                let handles: Vec<_> = (0..clients)
                    .map(|client| {
                        let service = Arc::clone(&service);
                        let scan = Arc::clone(&s.scan);
                        let join3 = Arc::clone(&s.join3);
                        std::thread::spawn(move || {
                            let receivers: Vec<_> = (0..per_client)
                                .map(|i| {
                                    let plan = if i % 2 == 0 { &scan } else { &join3 };
                                    service.submit(PredictRequest {
                                        id: (client * per_client + i) as u64,
                                        plan: Arc::clone(plan),
                                        deadline_ms: Some(100.0),
                                        tenant: TenantId::default(),
                                    })
                                })
                                .collect();
                            let mut served = 0usize;
                            for rx in receivers {
                                rx.recv().expect("response");
                                served += 1;
                            }
                            served
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("client thread"))
                    .sum::<usize>()
            })
        });
        if let Ok(service) = Arc::try_unwrap(service) {
            service.shutdown();
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_throughput,
    bench_retry,
    bench_shard_scaling
);
criterion_main!(benches);
