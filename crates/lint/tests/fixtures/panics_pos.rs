// Seeded violations for the `panic-discipline` rule.

pub fn unwraps(o: Option<u32>) -> u32 {
    o.unwrap()
}

pub fn expects(r: Result<u32, ()>) -> u32 {
    r.expect("always ok")
}

pub fn indexes(v: &[u32]) -> u32 {
    v[0]
}

pub fn slices(v: &[u32]) -> &[u32] {
    &v[1..3]
}

pub fn chained(m: &[Vec<u32>]) -> u32 {
    m[0][1]
}

pub fn through_call(v: &[u32]) -> u32 {
    v.iter().collect::<Vec<_>>()[0].to_owned().to_owned()
}
