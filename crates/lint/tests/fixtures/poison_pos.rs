// Seeded violations for the `poison-safety` rule.
use std::sync::Mutex;

pub fn direct(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

pub fn with_message(m: &Mutex<u32>) -> u32 {
    *m.lock().expect("not poisoned")
}

pub fn multiline(m: &Mutex<u32>) -> u32 {
    *m.lock()
        .unwrap()
}

pub fn let_bound(m: &Mutex<u32>) -> u32 {
    let guard = m.lock();
    *guard.unwrap()
}

pub fn let_bound_expect(m: &Mutex<Vec<u32>>) -> usize {
    let mut held = m.lock();
    held.expect("fine").len()
}
