// Clean under `poison-safety`: every acquisition recovers from poisoning.
use std::sync::{Mutex, PoisonError};

pub fn recovered(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub fn let_bound_recovered(m: &Mutex<u32>) -> u32 {
    let guard = m.lock().unwrap_or_else(PoisonError::into_inner);
    *guard
}

pub fn matched(m: &Mutex<u32>) -> u32 {
    match m.lock() {
        Ok(g) => *g,
        Err(poisoned) => *poisoned.into_inner(),
    }
}

pub fn unrelated_unwrap(o: Option<u32>) -> u32 {
    // Not a lock result: poison-safety does not police general Options.
    o.unwrap()
}

pub fn mentions() -> &'static str {
    ".lock().unwrap() inside a string is documentation, not a bug"
}
