// Clean under `alloc-hygiene`: handle copies and borrows, no buffer copies.
use std::sync::Arc;

pub fn handle_bump(plan: &Arc<Vec<u32>>) -> Arc<Vec<u32>> {
    plan.clone()
}

pub fn borrows(v: &[u32]) -> &[u32] {
    &v[..]
}

pub fn maps_without_copying(v: &[u32]) -> Vec<u64> {
    v.iter().map(|x| u64::from(*x) * 2).collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_copy() {
        let col = vec![1u32, 2];
        let copy = col.clone();
        assert_eq!(copy, col.to_vec());
    }
}
