// Seeded violations for the `determinism` rule; lines matter to the golden
// test in ../golden_rules.rs.
use std::time::Instant as Clock;
use std::time::{Duration, SystemTime as Wall};

pub fn direct() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn multiline() -> SystemTime {
    std::time::SystemTime::
        now()
}

pub fn aliased() -> (Clock, Wall) {
    (Clock::now(), Wall::now())
}

pub fn epoch(t: std::time::SystemTime) -> Duration {
    t.duration_since(UNIX_EPOCH).unwrap_or_default()
}
