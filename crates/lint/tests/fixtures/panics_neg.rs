// Clean under `panic-discipline`: fallible access stays fallible, and the
// bracket heuristic must not fire on types, macros, attributes, patterns,
// or array literals.
#[derive(Debug, Default)]
pub struct Buf {
    data: [u64; 4],
}

pub fn get(v: &[u32]) -> Option<&u32> {
    v.get(0)
}

pub fn first_or(v: &[u32], fallback: u32) -> u32 {
    v.first().copied().unwrap_or(fallback)
}

pub fn build() -> Vec<u32> {
    vec![1, 2, 3]
}

pub fn literal() -> [u8; 2] {
    [0xAB, 0xCD]
}

pub fn pattern(v: &[u32]) -> u32 {
    if let [a, b] = v {
        a + b
    } else {
        0
    }
}

pub fn typed(_x: &[u8], _y: Vec<[f64; 2]>) {}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_and_index() {
        let v = vec![1u32];
        assert_eq!(v[0], Some(1).unwrap());
    }
}
