// Clean under the `determinism` rule: clocks only appear in strings,
// comments, test code, and as non-`now` uses of time types.
use std::time::Duration;

/// Instant::now() in a doc comment is prose, not code.
pub fn budget() -> Duration {
    Duration::from_millis(5)
}

pub fn describe() -> &'static str {
    "calls Instant::now() and SystemTime::now() — allegedly"
}

pub fn raw() -> &'static str {
    r#"UNIX_EPOCH arithmetic lives in strings here"#
}

pub fn elapsed_of(d: Duration) -> u128 {
    d.as_nanos()
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_in_tests_is_fine() {
        let t = Instant::now();
        assert!(t.elapsed().as_secs() < 1);
    }
}
