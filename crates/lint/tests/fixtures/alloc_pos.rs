// Seeded violations for the `alloc-hygiene` rule.

pub fn copies_slice(v: &[u32]) -> Vec<u32> {
    v.to_vec()
}

pub fn copies_behind_handle(outer: &std::sync::Arc<Vec<u32>>) -> Vec<u32> {
    outer.as_ref().clone()
}

pub fn elementwise(v: &[String]) -> Vec<String> {
    v.iter().cloned().collect()
}

pub fn clones_column(col_data: &Vec<u32>) -> Vec<u32> {
    col_data.clone()
}

pub fn clones_provenance(prov_rows: &Vec<Vec<u32>>) -> Vec<Vec<u32>> {
    prov_rows.clone()
}
