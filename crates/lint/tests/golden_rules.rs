//! Golden tests per lint rule: every seeded violation in the positive
//! fixture is detected at its exact line, and the negative fixture — full
//! of near-misses (strings, comments, macros, patterns, test code) — stays
//! clean.

use uaq_lint::diag::{RuleId, SourceFile};
use uaq_lint::rules::all_rules;

/// Runs one rule over fixture text as if it lived at `rel`, returning the
/// sorted violation lines.
fn lines(rule_id: RuleId, rel: &str, src: &str) -> Vec<u32> {
    let rules = all_rules();
    let rule = rules
        .iter()
        .find(|r| r.id() == rule_id)
        .expect("rule registered");
    assert!(
        rule.applies_to(rel),
        "fixture path {rel} must be in {rule_id}'s scope"
    );
    let f = SourceFile::parse(rel.to_string(), src.to_string());
    assert!(f.lex_errors.is_empty(), "fixture must lex cleanly");
    let mut lines: Vec<u32> = rule.check(&f).iter().map(|d| d.line).collect();
    lines.sort_unstable();
    lines
}

#[test]
fn determinism_detects_every_seeded_violation() {
    let got = lines(
        RuleId::Determinism,
        "crates/cost/src/fixture.rs",
        include_str!("fixtures/determinism_pos.rs"),
    );
    // direct, multiline, two aliased calls, epoch arithmetic.
    assert_eq!(got, [7, 12, 17, 17, 21]);
}

#[test]
fn determinism_ignores_lookalikes() {
    let got = lines(
        RuleId::Determinism,
        "crates/cost/src/fixture.rs",
        include_str!("fixtures/determinism_neg.rs"),
    );
    assert_eq!(got, [] as [u32; 0]);
}

#[test]
fn poison_safety_detects_every_seeded_violation() {
    let got = lines(
        RuleId::PoisonSafety,
        "crates/service/src/fixture.rs",
        include_str!("fixtures/poison_pos.rs"),
    );
    // direct, expect, multiline chain, and the two let-bound forms.
    assert_eq!(got, [5, 9, 13, 19, 24]);
}

#[test]
fn poison_safety_accepts_recovering_code() {
    let got = lines(
        RuleId::PoisonSafety,
        "crates/service/src/fixture.rs",
        include_str!("fixtures/poison_neg.rs"),
    );
    assert_eq!(got, [] as [u32; 0]);
}

#[test]
fn panic_discipline_detects_every_seeded_violation() {
    let got = lines(
        RuleId::PanicDiscipline,
        "crates/stats/src/fixture.rs",
        include_str!("fixtures/panics_pos.rs"),
    );
    // unwrap, expect, index, range-slice, chained double index, index of a
    // call result.
    assert_eq!(got, [4, 8, 12, 16, 20, 20, 24]);
}

#[test]
fn panic_discipline_ignores_types_macros_patterns_and_tests() {
    let got = lines(
        RuleId::PanicDiscipline,
        "crates/stats/src/fixture.rs",
        include_str!("fixtures/panics_neg.rs"),
    );
    assert_eq!(got, [] as [u32; 0]);
}

#[test]
fn alloc_hygiene_detects_every_seeded_violation() {
    let got = lines(
        RuleId::AllocHygiene,
        "crates/engine/src/exec.rs",
        include_str!("fixtures/alloc_pos.rs"),
    );
    // to_vec, as_ref().clone, iter().cloned, and two hinted receivers.
    assert_eq!(got, [4, 8, 12, 16, 20]);
}

#[test]
fn alloc_hygiene_accepts_handle_copies() {
    let got = lines(
        RuleId::AllocHygiene,
        "crates/engine/src/exec.rs",
        include_str!("fixtures/alloc_neg.rs"),
    );
    assert_eq!(got, [] as [u32; 0]);
}
