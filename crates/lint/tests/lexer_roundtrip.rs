//! Property test: lexing an arbitrary generated token sequence is lossless
//! (concatenating token texts reproduces the source byte-for-byte) and
//! recovers exactly the kinds and texts that were generated.

use proptest::prelude::*;
use uaq_lint::lexer::{lex, TokenKind};

/// SplitMix64 — deterministic expansion of the proptest-supplied seed into
/// a token sequence.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[(self.next() % xs.len() as u64) as usize]
    }
}

/// One random significant token: (expected kind, exact text).
fn random_token(g: &mut Gen) -> (TokenKind, String) {
    match g.next() % 9 {
        0 => {
            let t = *g.pick(&["foo", "bar2", "_x", "r", "b", "br", "r#match", "Instant"]);
            (TokenKind::Ident, t.to_string())
        }
        1 => {
            let t = *g.pick(&["'a", "'static", "'_", "'outer"]);
            (TokenKind::Lifetime, t.to_string())
        }
        2 => {
            let t = *g.pick(&["'x'", "'\\n'", "' '", "'\\''", "b'q'"]);
            (TokenKind::Char, t.to_string())
        }
        3 => {
            let t = *g.pick(&[
                "\"hi\"",
                "\"a\\\"b\"",
                "\"\"",
                "b\"bytes\"",
                "\"no /* cmt */\"",
            ]);
            (TokenKind::Str, t.to_string())
        }
        4 => {
            let t = *g.pick(&[
                "r\"plain\"",
                "r#\"has \"quotes\"\"#",
                "r##\"one \"# deep\"##",
                "br#\"bytes \" here\"#",
                "r#\".lock().unwrap()\"#",
            ]);
            (TokenKind::RawStr, t.to_string())
        }
        5 => {
            let t = *g.pick(&["0", "42", "0xFF_u8", "1_000", "0b1010", "7usize"]);
            (TokenKind::Int, t.to_string())
        }
        6 => {
            let t = *g.pick(&["1.5", "2.5e-3", "1f64", "0.0", "9e9", "3.25f32"]);
            (TokenKind::Float, t.to_string())
        }
        7 => {
            let t = *g.pick(&[
                "+", "-", "*", "/", "=", "<", ">", ":", ";", ",", ".", "#", "!", "&", "|", "[",
                "]", "(", ")", "{", "}",
            ]);
            (TokenKind::Punct, t.to_string())
        }
        _ => {
            let t = *g.pick(&["'x'", "\"s\"", "0", "ident"]);
            let kind = match *t.as_bytes().first().unwrap_or(&b'i') {
                b'\'' => TokenKind::Char,
                b'"' => TokenKind::Str,
                b'0' => TokenKind::Int,
                _ => TokenKind::Ident,
            };
            (kind, t.to_string())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lex_reconstructs_arbitrary_token_sequences(seed in 0u64..u64::MAX, len in 1usize..48) {
        let mut g = Gen(seed);
        let expected: Vec<(TokenKind, String)> = (0..len).map(|_| random_token(&mut g)).collect();
        // Newline separators keep generated tokens from gluing together
        // (`r` + `"s"` would otherwise form a raw string) and double as the
        // whitespace/comment trivia the lexer must tile losslessly. Mix in
        // comments as extra trivia between tokens.
        let mut src = String::new();
        for (i, (_, text)) in expected.iter().enumerate() {
            if i > 0 {
                match g.next() % 4 {
                    0 => src.push_str("\n  \t\n"),
                    1 => src.push_str(" // trailing note\n"),
                    2 => src.push_str(" /* inline /* nested */ note */ "),
                    _ => src.push('\n'),
                }
            }
            src.push_str(text);
        }
        let (tokens, errors) = lex(&src);
        prop_assert!(errors.is_empty(), "lex errors on {src:?}: {errors:?}");
        // Lossless: the tokens tile the input exactly.
        let rebuilt: String = tokens.iter().map(|t| t.text(&src)).collect();
        prop_assert_eq!(&rebuilt, &src);
        let mut offset = 0usize;
        for t in &tokens {
            prop_assert_eq!(t.start, offset, "gap or overlap at byte {}", offset);
            offset = t.end;
        }
        prop_assert_eq!(offset, src.len());
        // Recovered: significant tokens match the generated sequence.
        let got: Vec<(TokenKind, String)> = tokens
            .iter()
            .filter(|t| !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            ))
            .map(|t| (t.kind, t.text(&src).to_string()))
            .collect();
        prop_assert_eq!(got, expected);
    }
}
