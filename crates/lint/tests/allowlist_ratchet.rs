//! The allowlist is a ratchet, not a dumping ground: the number of entries
//! and the total excused-site budget may shrink but never grow. Adding a
//! panic site to the prediction crates means either removing one elsewhere
//! or consciously raising these numbers in the same review that justifies
//! the new site.

use uaq_lint::allowlist::Allowlist;

/// Snapshot at PR 10 (the PR that introduced the linter): 48 entries
/// excusing 565 audited sites. Lower either number when you remove sites.
const MAX_ENTRIES: usize = 48;
const MAX_TOTAL_BUDGET: usize = 565;

fn load() -> Allowlist {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../lint-allowlist.txt");
    let text = std::fs::read_to_string(path).expect("lint-allowlist.txt at workspace root");
    Allowlist::parse(&text).expect("allowlist parses")
}

#[test]
fn allowlist_does_not_grow() {
    let al = load();
    assert!(
        al.entries.len() <= MAX_ENTRIES,
        "allowlist grew to {} entries (budget {MAX_ENTRIES}); remove sites instead",
        al.entries.len()
    );
    let total: usize = al.entries.iter().map(|e| e.max).sum();
    assert!(
        total <= MAX_TOTAL_BUDGET,
        "allowlist ratchet total grew to {total} (budget {MAX_TOTAL_BUDGET}); \
         remove sites instead"
    );
}

#[test]
fn every_entry_is_justified_and_scoped() {
    let al = load();
    for e in &al.entries {
        assert!(
            e.justification.len() >= 15,
            "entry at line {} needs a real justification, not {:?}",
            e.line,
            e.justification
        );
        assert!(
            e.file.starts_with("crates/") && e.file.ends_with(".rs"),
            "entry at line {} must name a workspace source file, got {:?}",
            e.line,
            e.file
        );
        assert!(e.max >= 1, "entry at line {} excuses nothing", e.line);
    }
}
