//! The `uaq-lint` CLI.
//!
//! ```text
//! cargo run -p uaq-lint -- --deny all                 # what CI runs
//! cargo run -p uaq-lint -- --deny determinism         # one rule
//! cargo run -p uaq-lint -- --deny all --allow panic-discipline
//! cargo run -p uaq-lint -- --list-rules
//! ```
//!
//! Exit codes: 0 clean (allowlisted findings are clean), 1 violations or
//! allowlist errors, 2 usage errors.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;
use uaq_lint::diag::RuleId;
use uaq_lint::{load_allowlist, run_workspace, Config};

fn usage() -> &'static str {
    "usage: uaq-lint [--root DIR] [--deny RULE|all]... [--allow RULE|all]... \
     [--no-allowlist] [--list-rules]\n\
     Rules default to `--deny all`. `--allow` subtracts from the denied set.\n\
     Findings matching lint-allowlist.txt entries pass (within their ratchet)."
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny: BTreeSet<RuleId> = RuleId::ALL.into_iter().collect();
    let mut explicit_deny: Option<BTreeSet<RuleId>> = None;
    let mut use_allowlist = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => {
                println!("uaq-lint rules:");
                for r in RuleId::ALL {
                    println!("  {:<17} {}", r.name(), r.description());
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(d) => root = PathBuf::from(d),
                None => {
                    eprintln!("--root needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--deny" => match args.next().as_deref() {
                Some("all") => {
                    explicit_deny
                        .get_or_insert_with(BTreeSet::new)
                        .extend(RuleId::ALL);
                }
                Some(name) => match RuleId::parse(name) {
                    Some(r) => {
                        explicit_deny.get_or_insert_with(BTreeSet::new).insert(r);
                    }
                    None => {
                        eprintln!("unknown rule {name:?}\n{}", usage());
                        return ExitCode::from(2);
                    }
                },
                None => {
                    eprintln!("--deny needs a rule name or `all`\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--allow" => match args.next().as_deref() {
                Some("all") => {
                    deny.clear();
                    if let Some(d) = &mut explicit_deny {
                        d.clear();
                    }
                }
                Some(name) => match RuleId::parse(name) {
                    Some(r) => {
                        deny.remove(&r);
                        if let Some(d) = &mut explicit_deny {
                            d.remove(&r);
                        }
                    }
                    None => {
                        eprintln!("unknown rule {name:?}\n{}", usage());
                        return ExitCode::from(2);
                    }
                },
                None => {
                    eprintln!("--allow needs a rule name or `all`\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--no-allowlist" => use_allowlist = false,
            other => {
                eprintln!("unknown argument {other:?}\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    // `--deny X` alone means "only X"; combined with later `--allow` the
    // allows subtract (handled above as they arrive).
    let deny = explicit_deny.unwrap_or(deny);

    let allowlist = if use_allowlist {
        match load_allowlist(&root) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };

    let cfg = Config {
        root,
        deny,
        allowlist,
    };
    let report = match run_workspace(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    for v in &report.violations {
        println!("{v}");
    }
    for e in &report.lex_errors {
        println!("lex error: {e}");
    }
    for e in &report.allowlist_errors {
        println!("{e}");
    }
    println!(
        "uaq-lint: {} file(s) scanned, {} violation(s), {} allowlisted, {} allowlist error(s)",
        report.files_scanned,
        report.violations.len(),
        report.allowed.len(),
        report.allowlist_errors.len(),
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
