//! Shared diagnostics: rule identities, findings with file:line spans, and
//! the lexed view of a source file the rules pattern-match against.
//!
//! Both analyses in this PR — the workspace linter and the plan validator
//! in `uaq_engine::validate` — report through the same `file:line: [rule]`
//! shape so CI output and editor jump-to-location work identically.

use crate::lexer::{self, Token, TokenKind};
use std::fmt;
use std::path::PathBuf;

/// Identity of a lint rule; stable ids appear in CI output, `--deny`/
/// `--allow` arguments and allowlist lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    Determinism,
    PoisonSafety,
    PanicDiscipline,
    AllocHygiene,
}

impl RuleId {
    pub const ALL: [RuleId; 4] = [
        RuleId::Determinism,
        RuleId::PoisonSafety,
        RuleId::PanicDiscipline,
        RuleId::AllocHygiene,
    ];

    pub fn name(self) -> &'static str {
        match self {
            RuleId::Determinism => "determinism",
            RuleId::PoisonSafety => "poison-safety",
            RuleId::PanicDiscipline => "panic-discipline",
            RuleId::AllocHygiene => "alloc-hygiene",
        }
    }

    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.name() == s)
    }

    pub fn description(self) -> &'static str {
        match self {
            RuleId::Determinism => {
                "wall-clock reads (Instant::now / SystemTime::now / UNIX_EPOCH, including \
                 aliased imports) in the prediction crates; timing belongs to telemetry::span"
            }
            RuleId::PoisonSafety => {
                ".lock().unwrap()/.expect(…) in uaq-service outside src/sync.rs, including \
                 unwraps reached through let-bound lock results"
            }
            RuleId::PanicDiscipline => {
                "unwrap/expect/slice-index sites in non-test code of the prediction crates; \
                 every surviving site carries a justification in lint-allowlist.txt"
            }
            RuleId::AllocHygiene => {
                "per-row/per-batch buffer copies (.to_vec(), .as_ref().clone(), \
                 .iter().cloned().collect()) in engine/storage hot modules where handle \
                 reuse is the contract"
            }
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: where, which rule, what the offending tokens spell.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: RuleId,
    pub file: PathBuf,
    pub line: u32,
    /// The offending token run, whitespace-normalized — what allowlist
    /// patterns match against.
    pub snippet: String,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} — `{}`",
            self.file.display(),
            self.line,
            self.rule,
            self.message,
            self.snippet
        )
    }
}

/// A lexed source file plus the derived views rules need: the significant
/// (non-trivia) token indices and the byte ranges of test-only items.
pub struct SourceFile {
    /// Path relative to the workspace root, '/'-separated.
    pub rel: String,
    pub src: String,
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-whitespace, non-comment tokens.
    pub sig: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items.
    test_regions: Vec<(usize, usize)>,
    pub lex_errors: Vec<lexer::LexError>,
}

impl SourceFile {
    pub fn parse(rel: String, src: String) -> SourceFile {
        let (tokens, lex_errors) = lexer::lex(&src);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        let test_regions = find_test_regions(&src, &tokens, &sig);
        SourceFile {
            rel,
            src,
            tokens,
            sig,
            test_regions,
            lex_errors,
        }
    }

    /// Text of the `i`-th significant token.
    pub fn sig_text(&self, i: usize) -> &str {
        self.tokens[self.sig[i]].text(&self.src)
    }

    pub fn sig_kind(&self, i: usize) -> TokenKind {
        self.tokens[self.sig[i]].kind
    }

    pub fn sig_line(&self, i: usize) -> u32 {
        self.tokens[self.sig[i]].line
    }

    /// Whether the `i`-th significant token lies inside a `#[cfg(test)]`
    /// module or `#[test]` function.
    pub fn in_test_code(&self, i: usize) -> bool {
        let pos = self.tokens[self.sig[i]].start;
        self.test_regions.iter().any(|&(s, e)| pos >= s && pos < e)
    }

    /// Whitespace-normalized text of significant tokens `[from, to)` — the
    /// snippet diagnostics carry and allowlist patterns match.
    pub fn snippet(&self, from: usize, to: usize) -> String {
        let mut out = String::new();
        for i in from..to.min(self.sig.len()) {
            let text = self.sig_text(i);
            // Keep idents separated so `let g` doesn't render `letg`.
            if !out.is_empty()
                && out
                    .as_bytes()
                    .last()
                    .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
                && text
                    .as_bytes()
                    .first()
                    .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
            {
                out.push(' ');
            }
            out.push_str(text);
        }
        out
    }

    pub fn diagnostic(&self, rule: RuleId, at: usize, len: usize, message: String) -> Diagnostic {
        Diagnostic {
            rule,
            file: PathBuf::from(&self.rel),
            line: self.sig_line(at),
            snippet: self.snippet(at, at + len),
            message,
        }
    }
}

/// Finds the byte ranges of items annotated `#[cfg(test)]` or `#[test]`
/// (including `#[cfg(any(test, …))]`): from the attribute's `#` through the
/// end of the following item (its balanced `{…}` block or terminating `;`).
fn find_test_regions(src: &str, tokens: &[Token], sig: &[usize]) -> Vec<(usize, usize)> {
    let text = |i: usize| tokens[sig[i]].text(src);
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 1 < sig.len() {
        if text(i) != "#" || text(i + 1) != "[" {
            i += 1;
            continue;
        }
        let attr_start_byte = tokens[sig[i]].start;
        // Find the matching `]` and check whether the attribute mentions a
        // bare `test` path segment (covers #[test], #[cfg(test)],
        // #[cfg(any(test, feature = "x"))]).
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut is_test_attr = false;
        while j < sig.len() {
            match text(j) {
                "[" | "(" => depth += 1,
                "]" | ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "test" => is_test_attr = true,
                _ => {}
            }
            j += 1;
        }
        if !is_test_attr || j >= sig.len() {
            i = j.max(i + 1);
            continue;
        }
        // Skip any further attributes (#[cfg(test)] #[allow(…)] mod t {…}).
        let mut k = j + 1;
        while k + 1 < sig.len() && text(k) == "#" && text(k + 1) == "[" {
            let mut d = 0usize;
            let mut m = k + 1;
            while m < sig.len() {
                match text(m) {
                    "[" | "(" => d += 1,
                    "]" | ")" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            k = m + 1;
        }
        // Consume the item: to its `{`-balanced end, or the first `;` seen
        // before any brace opens (e.g. `#[cfg(test)] use foo;`).
        let mut brace = 0usize;
        let mut end_sig = None;
        let mut m = k;
        while m < sig.len() {
            match text(m) {
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace == 0 {
                        end_sig = Some(m);
                        break;
                    }
                }
                ";" if brace == 0 => {
                    end_sig = Some(m);
                    break;
                }
                _ => {}
            }
            m += 1;
        }
        match end_sig {
            Some(e) => {
                regions.push((attr_start_byte, tokens[sig[e]].end));
                i = e + 1;
            }
            None => {
                regions.push((attr_start_byte, src.len()));
                break;
            }
        }
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_cfg_test_modules() {
        let src = "fn prod() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n\
                   fn prod2() {}\n";
        let f = SourceFile::parse("x.rs".into(), src.into());
        let unwraps: Vec<bool> = (0..f.sig.len())
            .filter(|&i| f.sig_text(i) == "unwrap")
            .map(|i| f.in_test_code(i))
            .collect();
        assert_eq!(unwraps, [false, true]);
        // prod2 after the module is back outside the region.
        let prod2 = (0..f.sig.len())
            .find(|&i| f.sig_text(i) == "prod2")
            .unwrap();
        assert!(!f.in_test_code(prod2));
    }

    #[test]
    fn test_regions_cover_test_fns_and_stacked_attrs() {
        let src = "#[test]\n#[should_panic]\nfn boom() { a.unwrap(); }\nfn keep() { b.unwrap(); }";
        let f = SourceFile::parse("x.rs".into(), src.into());
        let unwraps: Vec<bool> = (0..f.sig.len())
            .filter(|&i| f.sig_text(i) == "unwrap")
            .map(|i| f.in_test_code(i))
            .collect();
        assert_eq!(unwraps, [true, false]);
    }

    #[test]
    fn cfg_any_test_counts_as_test() {
        let src = "#[cfg(any(test, feature = \"slow\"))]\nmod helpers { fn h() { c.unwrap(); } }";
        let f = SourceFile::parse("x.rs".into(), src.into());
        let i = (0..f.sig.len())
            .find(|&i| f.sig_text(i) == "unwrap")
            .unwrap();
        assert!(f.in_test_code(i));
    }

    #[test]
    fn non_test_attrs_do_not_create_regions() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() { d.unwrap(); }";
        let f = SourceFile::parse("x.rs".into(), src.into());
        let i = (0..f.sig.len())
            .find(|&i| f.sig_text(i) == "unwrap")
            .unwrap();
        assert!(!f.in_test_code(i));
    }
}
