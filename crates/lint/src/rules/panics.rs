//! Rule `panic-discipline`: every potential panic site in non-test code of
//! the prediction crates is either removed or justified.
//!
//! The service survives worker panics via `catch_unwind` + the degradation
//! ladder, but each caught panic costs a served tier and pollutes the
//! variance calibration with a synthetic tail latency. The prediction
//! crates therefore keep an audited budget of panic sites: `unwrap()`,
//! `expect(…)`, and direct slice indexing. Sites that are genuinely
//! unreachable (checked invariants) live in `lint-allowlist.txt` with a
//! one-line justification and a per-file ratchet count that must never
//! grow; everything else is a CI failure.
//!
//! The slice-index check is a heuristic over token shapes: a `[` directly
//! preceded by an expression tail (identifier, `)`, or `]`) is an index.
//! Attributes (`#[…]`), macro invocations (`vec![…]`), array types and
//! array literals do not match because their `[` follows `#`, `!`, `:`, an
//! operator, or an opening bracket.

use super::Rule;
use crate::diag::{Diagnostic, RuleId, SourceFile};
use crate::lexer::TokenKind;

pub struct PanicDiscipline;

impl Rule for PanicDiscipline {
    fn id(&self) -> RuleId {
        RuleId::PanicDiscipline
    }

    fn applies_to(&self, rel: &str) -> bool {
        super::in_prediction_crates(rel)
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let n = file.sig.len();
        for i in 0..n {
            if file.in_test_code(i) {
                continue;
            }
            let t = file.sig_text(i);
            // `.unwrap()` / `.expect(`
            if (t == "unwrap" || t == "expect")
                && i >= 1
                && file.sig_text(i - 1) == "."
                && i + 1 < n
                && file.sig_text(i + 1) == "("
            {
                let start = i.saturating_sub(2);
                out.push(file.diagnostic(
                    self.id(),
                    start,
                    (i + 2).min(n) - start,
                    format!(".{t}(…) in a prediction crate — remove or justify in the allowlist"),
                ));
                continue;
            }
            // Slice indexing `expr[…]`.
            if t == "[" && i >= 1 && is_expr_tail(file, i - 1) {
                let start = i.saturating_sub(1);
                out.push(file.diagnostic(
                    self.id(),
                    start,
                    3,
                    "direct index — can panic out of bounds; remove or justify in the allowlist"
                        .to_string(),
                ));
            }
        }
        out
    }
}

/// Whether significant token `i` can end an expression that a following `[`
/// would index into.
fn is_expr_tail(file: &SourceFile, i: usize) -> bool {
    let t = file.sig_text(i);
    match file.sig_kind(i) {
        TokenKind::Ident => !super::is_keyword(t),
        TokenKind::Punct => t == ")" || t == "]",
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/stats/src/x.rs".into(), src.into());
        PanicDiscipline.check(&f)
    }

    #[test]
    fn catches_unwrap_expect_and_indexing() {
        assert_eq!(run("fn f(o: Option<u32>) -> u32 { o.unwrap() }").len(), 1);
        assert_eq!(
            run("fn f(o: Option<u32>) -> u32 { o.expect(\"set\") }").len(),
            1
        );
        assert_eq!(run("fn f(v: &[u32]) -> u32 { v[0] }").len(), 1);
        assert_eq!(
            run("fn f(v: &[u32], i: usize) -> &[u32] { &v[i..] }").len(),
            1
        );
        assert_eq!(run("fn f(m: &M) -> u32 { m.rows()[3] }").len(), 1);
        assert_eq!(run("fn f(v: &[Vec<u32>]) -> u32 { v[0][1] }").len(), 2);
    }

    #[test]
    fn macros_attrs_types_and_literals_are_not_indexing() {
        assert!(run("fn f() -> Vec<u32> { vec![1, 2] }").is_empty());
        assert!(run("#[derive(Debug)]\nstruct S;").is_empty());
        assert!(run("fn f(x: [u32; 4]) -> [u32; 4] { x }").is_empty());
        assert!(run("fn f() { let a = [1, 2, 3]; let _ = a.len(); }").is_empty());
        assert!(run("fn f(v: &[u32]) -> Option<&u32> { v.get(0) }").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        assert!(run("#[cfg(test)]\nmod t { fn g(v: &[u32]) -> u32 { v[0].clone() } }").is_empty());
        assert!(run("#[test]\nfn t() { Some(3).unwrap(); }").is_empty());
    }

    #[test]
    fn scope_is_the_six_prediction_crates_src_only() {
        for p in super::super::PREDICTION_CRATES {
            assert!(PanicDiscipline.applies_to(&format!("{p}lib.rs")));
        }
        assert!(!PanicDiscipline.applies_to("crates/engine/tests/golden.rs"));
        assert!(!PanicDiscipline.applies_to("crates/service/src/service.rs"));
        assert!(!PanicDiscipline.applies_to("crates/workloads/src/tpch.rs"));
    }
}
