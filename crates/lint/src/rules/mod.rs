//! The rule set. Each rule owns its file scope (mirroring the contracts in
//! ROADMAP.md) and a token-stream check over a parsed [`SourceFile`].

mod alloc;
mod determinism;
mod panics;
mod poison;

use crate::diag::{Diagnostic, RuleId, SourceFile};

pub use alloc::AllocHygiene;
pub use determinism::Determinism;
pub use panics::PanicDiscipline;
pub use poison::PoisonSafety;

/// The six crates whose outputs must be pure functions of their inputs —
/// anything feeding a prediction that could be cached and bit-compared.
pub const PREDICTION_CRATES: [&str; 6] = [
    "crates/core/src/",
    "crates/selest/src/",
    "crates/engine/src/",
    "crates/cost/src/",
    "crates/stats/src/",
    "crates/storage/src/",
];

pub trait Rule {
    fn id(&self) -> RuleId;
    /// Whether the rule audits this workspace-relative ('/'-separated) path.
    fn applies_to(&self, rel: &str) -> bool;
    fn check(&self, file: &SourceFile) -> Vec<Diagnostic>;
}

/// All rules, in the order they are listed by `--list-rules`.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(Determinism),
        Box::new(PoisonSafety),
        Box::new(PanicDiscipline),
        Box::new(AllocHygiene),
    ]
}

fn in_prediction_crates(rel: &str) -> bool {
    PREDICTION_CRATES.iter().any(|p| rel.starts_with(p))
}

/// Rust keywords that can directly precede `[` or be mistaken for a
/// receiver; the slice-index heuristic must not treat them as expressions.
pub(crate) fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "async"
            | "await"
            | "box"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "type"
            | "union"
            | "unsafe"
            | "use"
            | "where"
            | "while"
    )
}
