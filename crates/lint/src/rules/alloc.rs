//! Rule `alloc-hygiene`: no buffer copies in the engine/storage hot modules.
//!
//! The late-materialization data plane (PR 9) made handle reuse the
//! contract: `ColumnRef`/`ColumnSlice` borrows and `ProvData` views are
//! cheap to pass around, and per-batch deep copies (`.to_vec()`,
//! `.as_ref().clone()`, `.iter().cloned().collect()`) in the executor's
//! inner loops undo the whole optimisation. The `redundant_clone` clippy
//! gate catches clones whose *source* dies; this rule also catches clones
//! that compile fine but copy data the hot path was designed to borrow.
//! Deliberate copies (page materialisation boundaries) carry allowlist
//! justifications.

use super::Rule;
use crate::diag::{Diagnostic, RuleId, SourceFile};

/// The modules on the per-row / per-batch execution path.
const HOT_MODULES: [&str; 5] = [
    "crates/engine/src/exec.rs",
    "crates/engine/src/exec_row.rs",
    "crates/engine/src/expr.rs",
    "crates/storage/src/column.rs",
    "crates/storage/src/table.rs",
];

/// Receiver names that hold column/provenance handles; `.clone()` on these
/// is a deep copy of row data, not a handle copy.
const HANDLE_HINTS: [&str; 6] = ["col", "column", "slice", "prov", "rows", "page"];

pub struct AllocHygiene;

impl Rule for AllocHygiene {
    fn id(&self) -> RuleId {
        RuleId::AllocHygiene
    }

    fn applies_to(&self, rel: &str) -> bool {
        HOT_MODULES.contains(&rel)
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let n = file.sig.len();
        for i in 0..n {
            if file.in_test_code(i) {
                continue;
            }
            let t = file.sig_text(i);
            let is_call = |j: usize, name: &str| {
                j + 2 < n
                    && file.sig_text(j) == "."
                    && file.sig_text(j + 1) == name
                    && file.sig_text(j + 2) == "("
            };
            // `.to_vec()` — always a full copy of the slice.
            if t == "." && is_call(i, "to_vec") {
                out.push(file.diagnostic(
                    self.id(),
                    i.saturating_sub(1),
                    4,
                    ".to_vec() in a hot module — copies the buffer; borrow or justify".to_string(),
                ));
            }
            // `.as_ref().clone()` — cloning through a handle.
            if t == "." && is_call(i, "as_ref") && i + 4 < n && is_call(i + 4, "clone") {
                out.push(file.diagnostic(
                    self.id(),
                    i.saturating_sub(1),
                    8,
                    ".as_ref().clone() in a hot module — deep-copies behind the handle".to_string(),
                ));
            }
            // `.iter().cloned()` / `.iter().copied().collect::<Vec<_>>()`
            if t == "." && is_call(i, "iter") && i + 4 < n && is_call(i + 4, "cloned") {
                out.push(
                    file.diagnostic(
                        self.id(),
                        i.saturating_sub(1),
                        8,
                        ".iter().cloned() in a hot module — element-wise copy; borrow or justify"
                            .to_string(),
                    ),
                );
            }
            // `handle.clone()` where the receiver name says column/prov data.
            if t == "clone"
                && i >= 2
                && file.sig_text(i - 1) == "."
                && i + 1 < n
                && file.sig_text(i + 1) == "("
            {
                let recv = file.sig_text(i - 2).to_ascii_lowercase();
                if HANDLE_HINTS.iter().any(|h| recv.contains(h)) {
                    out.push(file.diagnostic(
                        self.id(),
                        i - 2,
                        4,
                        format!(
                            "`{}.clone()` in a hot module — looks like a column/provenance \
                             buffer copy; borrow or justify",
                            file.sig_text(i - 2)
                        ),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/engine/src/exec.rs".into(), src.into());
        AllocHygiene.check(&f)
    }

    #[test]
    fn catches_copies() {
        assert_eq!(run("fn f(v: &[u32]) -> Vec<u32> { v.to_vec() }").len(), 1);
        assert_eq!(
            run("fn f(v: &[u32]) -> Vec<u32> { v\n  .to_vec() }").len(),
            1
        );
        assert_eq!(run("fn f(a: &A) -> D { a.as_ref().clone() }").len(), 1);
        assert_eq!(
            run("fn f(v: &[u32]) -> Vec<u32> { v.iter().cloned().collect() }").len(),
            1
        );
        assert_eq!(run("fn f(col: &C) -> C { col.clone() }").len(), 1);
        assert_eq!(
            run("fn f(prov_data: &P) -> P { prov_data.clone() }").len(),
            1
        );
    }

    #[test]
    fn handle_and_arc_copies_are_fine() {
        assert!(run("fn f(plan: &Arc<Plan>) -> Arc<Plan> { plan.clone() }").is_empty());
        assert!(run("fn f(v: &[u32]) -> &[u32] { &v[..] }").is_empty());
        assert!(run("fn f(it: I) -> Vec<u32> { it.map(score).collect() }").is_empty());
    }

    #[test]
    fn scope_is_the_hot_modules_only() {
        assert!(AllocHygiene.applies_to("crates/engine/src/exec.rs"));
        assert!(AllocHygiene.applies_to("crates/storage/src/column.rs"));
        assert!(!AllocHygiene.applies_to("crates/engine/src/planner.rs"));
        assert!(!AllocHygiene.applies_to("crates/service/src/service.rs"));
    }
}
