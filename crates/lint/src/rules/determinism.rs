//! Rule `determinism`: no wall-clock reads in the prediction crates.
//!
//! A cached prediction is only re-servable if the pipeline that produced it
//! is a pure function of (plan, samples, catalog, hardware profile). A
//! single `Instant::now()` smuggled into a cost formula silently breaks the
//! bit-identical-replay contract that `uaq_telemetry`'s calibration and the
//! service's cached-estimate tiers rely on. Timing is telemetry's job:
//! `crates/telemetry/src/span.rs` is the one sanctioned clock owner.
//!
//! Unlike the `grep -rnE 'Instant::now|SystemTime::now'` gate this rule
//! replaces, the token-stream match also catches:
//! - aliased imports: `use std::time::Instant as Clock; … Clock::now()`,
//! - calls split across lines or laundered through `use std::time::*`,
//! - `UNIX_EPOCH`-based arithmetic that never names `SystemTime::now`,
//!
//! and it does *not* fire on mentions inside strings, comments, or test
//! code — the three classic grep false positives.

use super::Rule;
use crate::diag::{Diagnostic, RuleId, SourceFile};
use std::collections::BTreeSet;

pub struct Determinism;

impl Rule for Determinism {
    fn id(&self) -> RuleId {
        RuleId::Determinism
    }

    fn applies_to(&self, rel: &str) -> bool {
        if rel == "crates/telemetry/src/span.rs" {
            return false;
        }
        super::in_prediction_crates(rel) || rel.starts_with("crates/telemetry/src/")
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let clock_names = clock_names(file);
        let n = file.sig.len();
        for i in 0..n {
            if file.in_test_code(i) {
                continue;
            }
            let t = file.sig_text(i);
            // `Name::now` where Name is a known clock type or an alias of one.
            if clock_names.contains(t)
                && i + 3 < n
                && file.sig_text(i + 1) == ":"
                && file.sig_text(i + 2) == ":"
                && file.sig_text(i + 3) == "now"
            {
                out.push(file.diagnostic(
                    self.id(),
                    i,
                    4,
                    format!("wall-clock read `{t}::now` in a prediction crate"),
                ));
            }
            // Epoch arithmetic is a wall-clock read even without `::now`.
            if t == "UNIX_EPOCH" {
                out.push(file.diagnostic(
                    self.id(),
                    i,
                    1,
                    "UNIX_EPOCH reference in a prediction crate".to_string(),
                ));
            }
        }
        out
    }
}

/// The type names that resolve to a clock in this file: the std names plus
/// any aliases introduced by `use std::time::{Instant as X, …}`.
fn clock_names(file: &SourceFile) -> BTreeSet<String> {
    let mut names: BTreeSet<String> = ["Instant", "SystemTime"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let n = file.sig.len();
    let mut i = 0;
    while i + 4 < n {
        // `use std :: time` — then scan the rest of the use item for
        // `Instant as A` / `SystemTime as B`.
        if file.sig_text(i) == "use"
            && file.sig_text(i + 1) == "std"
            && file.sig_text(i + 2) == ":"
            && file.sig_text(i + 3) == ":"
            && file.sig_text(i + 4) == "time"
        {
            let mut j = i + 5;
            while j < n && file.sig_text(j) != ";" {
                if (file.sig_text(j) == "Instant" || file.sig_text(j) == "SystemTime")
                    && j + 2 < n
                    && file.sig_text(j + 1) == "as"
                {
                    names.insert(file.sig_text(j + 2).to_string());
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/engine/src/x.rs".into(), src.into());
        Determinism.check(&f)
    }

    #[test]
    fn catches_direct_and_multiline_calls() {
        assert_eq!(run("fn f() { let t = Instant::now(); }").len(), 1);
        assert_eq!(
            run("fn f() { let t = std::time::Instant\n::\nnow(); }").len(),
            1
        );
        assert_eq!(run("fn f() { let t = SystemTime::now(); }").len(), 1);
    }

    #[test]
    fn catches_aliased_imports_the_grep_missed() {
        let d = run("use std::time::Instant as Clock;\nfn f() { let t = Clock::now(); }");
        assert_eq!(d.len(), 1);
        assert!(d[0].snippet.contains("Clock"));
        let d = run("use std::time::{Duration, SystemTime as Wall};\nfn f() { Wall::now(); }");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn catches_epoch_arithmetic() {
        assert_eq!(
            run(
                "use std::time::UNIX_EPOCH;\nfn f(t: std::time::SystemTime) { \
                 let _ = t.duration_since(UNIX_EPOCH); }"
            )
            .len(),
            2 // the import mention and the use site
        );
    }

    #[test]
    fn ignores_strings_comments_and_tests() {
        assert!(run("// Instant::now() would be wrong here\nfn f() {}").is_empty());
        assert!(run("fn f() -> &'static str { \"Instant::now()\" }").is_empty());
        assert!(
            run("#[cfg(test)]\nmod t { use std::time::Instant; fn g() { Instant::now(); } }")
                .is_empty()
        );
    }

    #[test]
    fn scope_excludes_span_rs_and_non_prediction_crates() {
        assert!(!Determinism.applies_to("crates/telemetry/src/span.rs"));
        assert!(Determinism.applies_to("crates/telemetry/src/registry.rs"));
        assert!(Determinism.applies_to("crates/cost/src/model.rs"));
        assert!(!Determinism.applies_to("crates/service/src/service.rs"));
        assert!(!Determinism.applies_to("crates/engine/tests/exec.rs"));
    }
}
