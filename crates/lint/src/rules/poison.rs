//! Rule `poison-safety`: in `uaq-service`, lock poisoning is recovered, not
//! unwrapped.
//!
//! A worker that panics while holding a mutex poisons it; if any other path
//! then `.lock().unwrap()`s, one fault cascades into a service-wide outage
//! — exactly the failure mode PR 6's degradation ladder exists to prevent.
//! All lock acquisition goes through `crates/service/src/sync.rs`
//! (`lock_recover`/`lock_recover_with`), which is the one module allowed to
//! touch `PoisonError` machinery directly.
//!
//! The grep gate this replaces matched only the literal chain
//! `.lock().unwrap()` on one line. The token rule also catches:
//! - chains split across lines,
//! - `.expect("…")` variants,
//! - the let-bound form the grep famously missed:
//!   `let g = m.lock(); … g.unwrap()`.

use super::Rule;
use crate::diag::{Diagnostic, RuleId, SourceFile};
use std::collections::BTreeSet;

pub struct PoisonSafety;

impl Rule for PoisonSafety {
    fn id(&self) -> RuleId {
        RuleId::PoisonSafety
    }

    fn applies_to(&self, rel: &str) -> bool {
        rel != "crates/service/src/sync.rs" && rel.starts_with("crates/service/")
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let n = file.sig.len();
        // Pass 1: direct chains `.lock().unwrap()` / `.lock().expect(`, and
        // collect idents bound to raw lock results: `let g = ….lock();`.
        let mut bound: BTreeSet<String> = BTreeSet::new();
        for i in 0..n {
            if file.sig_text(i) != "lock" || i == 0 || file.sig_text(i - 1) != "." {
                continue;
            }
            if i + 2 >= n || file.sig_text(i + 1) != "(" || file.sig_text(i + 2) != ")" {
                continue;
            }
            // `.lock()` found; what happens to the result?
            if i + 5 < n && file.sig_text(i + 3) == "." {
                let method = file.sig_text(i + 4);
                if (method == "unwrap" || method == "expect") && file.sig_text(i + 5) == "(" {
                    out.push(file.diagnostic(
                        self.id(),
                        i - 1,
                        6,
                        format!(
                            ".lock().{method}(…) outside sync.rs — use lock_recover \
                             so a poisoned mutex degrades instead of cascading"
                        ),
                    ));
                    continue;
                }
            }
            // `let g = ….lock();` — remember g for pass 2. Only statements
            // that *end* at the lock call are raw LockResults; anything like
            // `.lock().map_err(…)` is already handling poisoning.
            if i + 3 < n && file.sig_text(i + 3) == ";" {
                if let Some(name) = binding_name(file, i) {
                    bound.insert(name);
                }
            }
        }
        if bound.is_empty() {
            return out;
        }
        // Pass 2: `g.unwrap()` / `g.expect(` on any let-bound lock result.
        for i in 0..n {
            let t = file.sig_text(i);
            if (t == "unwrap" || t == "expect")
                && i >= 2
                && file.sig_text(i - 1) == "."
                && bound.contains(file.sig_text(i - 2))
                && i + 1 < n
                && file.sig_text(i + 1) == "("
            {
                out.push(file.diagnostic(
                    self.id(),
                    i - 2,
                    4,
                    format!(
                        "`{}` holds a raw lock result; unwrapping it outside sync.rs \
                         turns poisoning into a panic",
                        file.sig_text(i - 2)
                    ),
                ));
            }
        }
        out.sort_by_key(|d| d.line);
        out
    }
}

/// For a `.lock()` ending a statement, walks back to the statement's `let`
/// and returns the bound identifier, if the statement is a simple binding.
fn binding_name(file: &SourceFile, lock_idx: usize) -> Option<String> {
    // Scan back for `let`, stopping at the previous `;`/`{`/`}` so we never
    // escape the statement.
    let mut j = lock_idx;
    while j > 0 {
        j -= 1;
        match file.sig_text(j) {
            ";" | "{" | "}" => return None,
            "let" => {
                let mut k = j + 1;
                if file.sig_text(k) == "mut" {
                    k += 1;
                }
                let name = file.sig_text(k);
                if name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
                {
                    return Some(name.to_string());
                }
                return None;
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/service/src/x.rs".into(), src.into());
        PoisonSafety.check(&f)
    }

    #[test]
    fn catches_direct_and_multiline_chains() {
        assert_eq!(run("fn f(m: &M) { m.lock().unwrap(); }").len(), 1);
        assert_eq!(
            run("fn f(m: &M) { m.lock().expect(\"poisoned\"); }").len(),
            1
        );
        assert_eq!(run("fn f(m: &M) { m.lock()\n    .unwrap(); }").len(), 1);
    }

    #[test]
    fn catches_let_bound_guard_the_grep_missed() {
        let d = run("fn f(m: &M) { let g = m.lock();\n let v = g.unwrap(); }");
        assert_eq!(d.len(), 1);
        assert!(d[0].snippet.contains("g.unwrap"));
        assert_eq!(
            run("fn f(m: &M) { let mut g = m.lock(); g.expect(\"p\"); }").len(),
            1
        );
    }

    #[test]
    fn recovered_locks_are_clean() {
        assert!(run("fn f(m: &M) { lock_recover(m); }").is_empty());
        assert!(
            run("fn f(m: &M) { m.lock().unwrap_or_else(PoisonError::into_inner); }").is_empty()
        );
        // A binding that immediately recovers is not a raw lock result.
        assert!(
            run("fn f(m: &M) { let g = m.lock().unwrap_or_else(E::into_inner); g.get(); }")
                .is_empty()
        );
        // Unrelated unwraps on other bindings stay out of scope for this rule.
        assert!(run("fn f(o: Option<u32>) { let x = o; x.unwrap(); }").is_empty());
    }

    #[test]
    fn scope_is_service_minus_sync() {
        assert!(!PoisonSafety.applies_to("crates/service/src/sync.rs"));
        assert!(PoisonSafety.applies_to("crates/service/src/service.rs"));
        assert!(PoisonSafety.applies_to("crates/service/tests/chaos.rs"));
        assert!(!PoisonSafety.applies_to("crates/engine/src/exec.rs"));
    }
}
