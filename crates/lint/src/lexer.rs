//! A hand-rolled, lossless Rust lexer.
//!
//! The rules in this crate match against token streams, not raw text, so
//! they cannot be fooled by the things that defeat `grep`: calls split
//! across lines, string literals that merely *mention* a banned API, code
//! commented out, raw strings containing `".lock().unwrap()"`, and so on.
//!
//! The lexer is lossless: every byte of the input is covered by exactly one
//! token, and concatenating the token texts reconstructs the source
//! bit-for-bit (the round-trip property the proptest in
//! `tests/lexer_roundtrip.rs` exercises). It handles the parts of Rust's
//! lexical grammar that matter for correctness here:
//!
//! - raw strings `r"…"` / `r#"…"#` with arbitrary hash depth (and `br…`),
//! - nested block comments `/* /* … */ */`,
//! - lifetimes vs char literals (`'a` in `<'a>` vs `'a'`),
//! - numeric literals where `.` is consumed only when it starts a fraction
//!   (`1..2` lexes as `1` `.` `.` `2`, not `1.` `.2`),
//! - raw identifiers `r#match`.
//!
//! It deliberately does *not* build a syntax tree: rules pattern-match flat
//! token sequences, which is robust, fast, and exactly as much parsing as a
//! lint over our own codebase needs. The same lexer is the intended front
//! half of the future `uaq_sql` tokenizer (ROADMAP item 1).

/// What a token is; spans index into the original source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines, carriage returns.
    Whitespace,
    /// `// …` up to (not including) the newline.
    LineComment,
    /// `/* … */`, nesting respected; unterminated runs to EOF.
    BlockComment,
    /// Identifiers and keywords, including raw identifiers `r#match`.
    Ident,
    /// `'a`, `'static`, `'_` — an apostrophe not closing a char literal.
    Lifetime,
    /// Integer literal, any base, with suffix (`0xFF_u8`).
    Int,
    /// Float literal (`1.5`, `1e9`, `2.5e-3f64`).
    Float,
    /// `"…"` and `b"…"`.
    Str,
    /// `r"…"`, `r#"…"#`, `br#"…"#`.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A single punctuation byte (`::` arrives as two `:` tokens).
    Punct,
}

/// One lexeme: kind plus the byte span and the 1-based line it starts on.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

impl Token {
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// A lexical problem worth reporting (unterminated string/comment). The
/// lexer still produces a token covering the rest of the file so the
/// lossless property holds.
#[derive(Debug, Clone)]
pub struct LexError {
    pub line: u32,
    pub message: String,
}

/// True for bytes that may start an identifier. Non-ASCII bytes are treated
/// as identifier characters: the linter only needs to keep them attached to
/// whatever token they appear in.
fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic() || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    is_ident_start(b) || b.is_ascii_digit()
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn eat_while(&mut self, pred: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek(0) {
            if !pred(b) {
                break;
            }
            self.bump();
        }
    }
}

/// Lexes `src` into a lossless token stream plus any lexical errors.
pub fn lex(src: &str) -> (Vec<Token>, Vec<LexError>) {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    let mut errors = Vec::new();
    while cur.pos < cur.src.len() {
        let start = cur.pos;
        let line = cur.line;
        let kind = next_kind(&mut cur, &mut errors);
        debug_assert!(cur.pos > start, "lexer must always make progress");
        tokens.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
        });
    }
    (tokens, errors)
}

fn next_kind(cur: &mut Cursor<'_>, errors: &mut Vec<LexError>) -> TokenKind {
    let b = cur.peek(0).expect("next_kind called at EOF");
    match b {
        b' ' | b'\t' | b'\n' | b'\r' => {
            cur.eat_while(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'));
            TokenKind::Whitespace
        }
        b'/' if cur.peek(1) == Some(b'/') => {
            cur.eat_while(|b| b != b'\n');
            TokenKind::LineComment
        }
        b'/' if cur.peek(1) == Some(b'*') => block_comment(cur, errors),
        b'r' | b'b' => prefixed_or_ident(cur),
        b'\'' => char_or_lifetime(cur, errors),
        b'"' => {
            string(cur, errors);
            TokenKind::Str
        }
        b if is_ident_start(b) => {
            cur.eat_while(is_ident_continue);
            TokenKind::Ident
        }
        b if b.is_ascii_digit() => number(cur),
        _ => {
            cur.bump();
            TokenKind::Punct
        }
    }
}

fn block_comment(cur: &mut Cursor<'_>, errors: &mut Vec<LexError>) -> TokenKind {
    let open_line = cur.line;
    cur.bump(); // /
    cur.bump(); // *
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some(b'/'), Some(b'*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some(b'*'), Some(b'/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => {
                errors.push(LexError {
                    line: open_line,
                    message: "unterminated block comment".into(),
                });
                break;
            }
        }
    }
    TokenKind::BlockComment
}

/// `r` and `b` may start raw strings, byte strings, byte chars, raw
/// identifiers — or be plain identifiers.
fn prefixed_or_ident(cur: &mut Cursor<'_>) -> TokenKind {
    let b0 = cur.peek(0).expect("prefixed_or_ident at EOF");
    // br"…" / br#"…"#
    if b0 == b'b' && cur.peek(1) == Some(b'r') {
        let mut hashes = 0;
        while cur.peek(2 + hashes) == Some(b'#') {
            hashes += 1;
        }
        if cur.peek(2 + hashes) == Some(b'"') {
            cur.bump();
            cur.bump();
            raw_string_body(cur, hashes);
            return TokenKind::RawStr;
        }
    }
    // b"…" and b'…'
    if b0 == b'b' {
        match cur.peek(1) {
            Some(b'"') => {
                cur.bump();
                let mut errs = Vec::new();
                string(cur, &mut errs);
                return TokenKind::Str;
            }
            Some(b'\'') => {
                cur.bump();
                cur.bump(); // '
                            // b'x' / b'\n' — byte chars cannot be lifetimes.
                if cur.peek(0) == Some(b'\\') {
                    cur.bump();
                    cur.bump();
                } else {
                    cur.bump();
                }
                if cur.peek(0) == Some(b'\'') {
                    cur.bump();
                }
                return TokenKind::Char;
            }
            _ => {}
        }
    }
    // r"…" / r#"…"# / r#ident
    if b0 == b'r' {
        let mut hashes = 0;
        while cur.peek(1 + hashes) == Some(b'#') {
            hashes += 1;
        }
        if cur.peek(1 + hashes) == Some(b'"') {
            cur.bump();
            raw_string_body(cur, hashes);
            return TokenKind::RawStr;
        }
        if hashes == 1 && cur.peek(2).is_some_and(is_ident_start) {
            cur.bump(); // r
            cur.bump(); // #
            cur.eat_while(is_ident_continue);
            return TokenKind::Ident;
        }
    }
    cur.eat_while(is_ident_continue);
    TokenKind::Ident
}

/// Consumes `#*"…"#*` after the `r`/`br` prefix has been eaten.
fn raw_string_body(cur: &mut Cursor<'_>, hashes: usize) {
    for _ in 0..hashes {
        cur.bump(); // #
    }
    cur.bump(); // "
    loop {
        match cur.bump() {
            None => break, // unterminated; covered to EOF
            Some(b'"') => {
                let mut seen = 0;
                while seen < hashes && cur.peek(0) == Some(b'#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
            }
            Some(_) => {}
        }
    }
}

/// After a `'`: a char literal if a (possibly escaped) char is followed by a
/// closing `'`, otherwise a lifetime. `'a'` is a char; `'a` in `<'a>` is a
/// lifetime; `'\n'` is a char; `'_` is a lifetime.
fn char_or_lifetime(cur: &mut Cursor<'_>, errors: &mut Vec<LexError>) -> TokenKind {
    let line = cur.line;
    cur.bump(); // '
    if cur.peek(0) == Some(b'\\') {
        // Escapes only occur in char literals. The escaped character is
        // consumed unconditionally — `'\''` must not stop at its own quote.
        cur.bump(); // backslash
        cur.bump(); // escaped char
        loop {
            match cur.bump() {
                Some(b'\'') | None => break,
                Some(b'\\') => {
                    cur.bump();
                }
                Some(_) => {}
            }
        }
        return TokenKind::Char;
    }
    if cur.peek(0).is_some_and(is_ident_start) {
        // Could be 'a' (char) or 'a / 'static (lifetime): scan the ident run
        // and decide by whether a quote follows a single char.
        let run_start = cur.pos;
        cur.eat_while(is_ident_continue);
        let run_len = cur.pos - run_start;
        if run_len == 1 && cur.peek(0) == Some(b'\'') {
            cur.bump();
            return TokenKind::Char;
        }
        return TokenKind::Lifetime;
    }
    // '…' with a non-ident first char: ' ', '.', multibyte, etc.
    if cur.bump().is_none() {
        errors.push(LexError {
            line,
            message: "unterminated character literal".into(),
        });
        return TokenKind::Char;
    }
    // Multibyte chars span several bytes; eat to the closing quote.
    while let Some(b) = cur.peek(0) {
        if b == b'\'' {
            cur.bump();
            break;
        }
        if b == b'\n' {
            break;
        }
        cur.bump();
    }
    TokenKind::Char
}

fn string(cur: &mut Cursor<'_>, errors: &mut Vec<LexError>) {
    let line = cur.line;
    cur.bump(); // "
    loop {
        match cur.bump() {
            None => {
                errors.push(LexError {
                    line,
                    message: "unterminated string literal".into(),
                });
                break;
            }
            Some(b'\\') => {
                cur.bump();
            }
            Some(b'"') => break,
            Some(_) => {}
        }
    }
}

fn number(cur: &mut Cursor<'_>) -> TokenKind {
    let mut float = false;
    if cur.peek(0) == Some(b'0')
        && matches!(cur.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
    {
        cur.bump();
        cur.bump();
        cur.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        return TokenKind::Int;
    }
    cur.eat_while(|b| b.is_ascii_digit() || b == b'_');
    // A fraction only if `.` is followed by a digit: `1..2` and `1.map(…)`
    // must leave the dot alone.
    if cur.peek(0) == Some(b'.') && cur.peek(1).is_some_and(|b| b.is_ascii_digit()) {
        float = true;
        cur.bump();
        cur.eat_while(|b| b.is_ascii_digit() || b == b'_');
    }
    // Exponent: `1e9`, `2.5E-3`.
    if matches!(cur.peek(0), Some(b'e' | b'E')) {
        let sign = matches!(cur.peek(1), Some(b'+' | b'-'));
        let digit_at = if sign { 2 } else { 1 };
        if cur.peek(digit_at).is_some_and(|b| b.is_ascii_digit()) {
            float = true;
            cur.bump();
            if sign {
                cur.bump();
            }
            cur.eat_while(|b| b.is_ascii_digit() || b == b'_');
        }
    }
    // Type suffix (`u32`, `f64`) — also catches `1f32` making it a float.
    if cur.peek(0).is_some_and(is_ident_start) {
        let suffix_start = cur.pos;
        cur.eat_while(is_ident_continue);
        if cur.src[suffix_start] == b'f' {
            float = true;
        }
    }
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        let (toks, errs) = lex(src);
        assert!(errs.is_empty(), "unexpected lex errors: {errs:?}");
        toks.iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn lossless(src: &str) {
        let (toks, _) = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let got = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(got.contains(&(TokenKind::Lifetime, "'a".into())));
        assert!(got.contains(&(TokenKind::Char, "'x'".into())));
        let got = kinds("let l: &'static str = \"s\"; let c = '\\n';");
        assert!(got.contains(&(TokenKind::Lifetime, "'static".into())));
        assert!(got.contains(&(TokenKind::Char, "'\\n'".into())));
    }

    #[test]
    fn raw_strings_and_nested_comments() {
        let got = kinds("r#\"has \"quotes\" inside\"# br\"bytes\" r\"plain\"");
        assert_eq!(got[0].0, TokenKind::RawStr);
        assert_eq!(got[1].0, TokenKind::RawStr);
        assert_eq!(got[2].0, TokenKind::RawStr);
        lossless("/* outer /* inner */ still outer */ fn f() {}");
        let (toks, errs) = lex("/* outer /* inner */ still outer */ x");
        assert!(errs.is_empty());
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert_eq!(toks.last().unwrap().kind, TokenKind::Ident);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let got = kinds("1..2");
        let texts: Vec<&str> = got.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["1", ".", ".", "2"]);
        let got = kinds("1.5e-3 0xFF_u8 1f64 7.max(2)");
        assert_eq!(got[0], (TokenKind::Float, "1.5e-3".into()));
        assert_eq!(got[1], (TokenKind::Int, "0xFF_u8".into()));
        assert_eq!(got[2], (TokenKind::Float, "1f64".into()));
        assert_eq!(got[3], (TokenKind::Int, "7".into()));
        assert_eq!(got[4].1, ".");
    }

    #[test]
    fn raw_identifiers_and_line_numbers() {
        let got = kinds("r#match r#fn plain");
        assert_eq!(got[0], (TokenKind::Ident, "r#match".into()));
        assert_eq!(got[1], (TokenKind::Ident, "r#fn".into()));
        let (toks, _) = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.line)
            .collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn unterminated_inputs_are_lossless_with_errors() {
        for src in ["\"never closed", "/* never closed", "'"] {
            let (toks, errs) = lex(src);
            assert!(!errs.is_empty(), "{src:?} should error");
            let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
            assert_eq!(rebuilt, src);
        }
    }

    #[test]
    fn banned_text_inside_literals_is_not_code() {
        let src = r##"let s = "Instant::now()"; let r = r#".lock().unwrap()"#; // Instant::now()"##;
        let got = kinds(src);
        // No Ident token spells any banned name — they are all inside
        // literals or comments.
        assert!(!got
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && (t == "Instant" || t == "lock")));
    }
}
