//! The allowlist: per-site justifications with ratchet counts.
//!
//! `lint-allowlist.txt` at the workspace root carries one entry per line:
//!
//! ```text
//! rule | file | pattern | max | justification
//! ```
//!
//! - `rule`: a rule name from `--list-rules`;
//! - `file`: workspace-relative path the entry applies to;
//! - `pattern`: substring matched against the diagnostic snippet (`*`
//!   matches any snippet from that rule+file);
//! - `max`: the ratchet — the largest number of matching sites allowed.
//!   New code pushing the count past `max` fails CI; shrinking the count is
//!   always legal (tighten the number when you remove sites);
//! - `justification`: one line of *why* these sites cannot panic / must
//!   copy, carried next to the budget it excuses.
//!
//! Entries that match nothing are themselves errors ("stale entry"), so the
//! file can only shrink as the code improves — it cannot quietly rot.

use crate::diag::{Diagnostic, RuleId};

#[derive(Debug, Clone)]
pub struct Entry {
    pub rule: RuleId,
    pub file: String,
    pub pattern: String,
    pub max: usize,
    pub justification: String,
    /// 1-based line in the allowlist file, for error reporting.
    pub line: u32,
}

#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<Entry>,
}

/// The outcome of filtering diagnostics through the allowlist.
#[derive(Debug, Default)]
pub struct Applied {
    /// Diagnostics not excused by any entry — these fail the build.
    pub violations: Vec<Diagnostic>,
    /// Diagnostics excused by an entry.
    pub allowed: Vec<Diagnostic>,
    /// Human-readable allowlist problems: budget overruns and stale entries.
    pub errors: Vec<String>,
}

impl Allowlist {
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.splitn(5, '|').map(str::trim).collect();
            if parts.len() != 5 {
                return Err(format!(
                    "allowlist line {}: expected `rule | file | pattern | max | justification`",
                    idx + 1
                ));
            }
            let rule = RuleId::parse(parts[0]).ok_or_else(|| {
                format!("allowlist line {}: unknown rule {:?}", idx + 1, parts[0])
            })?;
            let max: usize = parts[3]
                .parse()
                .map_err(|_| format!("allowlist line {}: bad max {:?}", idx + 1, parts[3]))?;
            if parts[4].is_empty() {
                return Err(format!("allowlist line {}: empty justification", idx + 1));
            }
            entries.push(Entry {
                rule,
                file: parts[1].to_string(),
                pattern: parts[2].to_string(),
                max,
                justification: parts[4].to_string(),
                line: (idx + 1) as u32,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Splits `diags` into allowed and violating, enforcing ratchets. Each
    /// diagnostic is claimed by the first entry (in file order) whose rule,
    /// file, and pattern match it.
    pub fn apply(&self, diags: Vec<Diagnostic>) -> Applied {
        let mut out = Applied::default();
        let mut match_counts = vec![0usize; self.entries.len()];
        for d in diags {
            let hit = self.entries.iter().position(|e| {
                e.rule == d.rule
                    && d.file.to_string_lossy() == e.file.as_str()
                    && (e.pattern == "*" || d.snippet.contains(&e.pattern))
            });
            match hit {
                Some(i) => {
                    match_counts[i] += 1;
                    out.allowed.push(d);
                }
                None => out.violations.push(d),
            }
        }
        for (i, e) in self.entries.iter().enumerate() {
            if match_counts[i] == 0 {
                out.errors.push(format!(
                    "stale allowlist entry (line {}): `{} | {} | {}` matches no site — delete it",
                    e.line, e.rule, e.file, e.pattern
                ));
            } else if match_counts[i] > e.max {
                out.errors.push(format!(
                    "allowlist budget exceeded (line {}): `{} | {} | {}` allows {} site(s), \
                     found {} — remove the new site or raise the ratchet with a review",
                    e.line, e.rule, e.file, e.pattern, e.max, match_counts[i]
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn diag(rule: RuleId, file: &str, snippet: &str) -> Diagnostic {
        Diagnostic {
            rule,
            file: PathBuf::from(file),
            line: 1,
            snippet: snippet.to_string(),
            message: String::new(),
        }
    }

    const LIST: &str = "\
# comment\n\
panic-discipline | crates/engine/src/expr.rs | expect( | 2 | NaN screened at ingest\n\
alloc-hygiene | crates/engine/src/exec.rs | * | 1 | page boundary copy\n";

    #[test]
    fn parse_apply_and_ratchet() {
        let al = Allowlist::parse(LIST).unwrap();
        assert_eq!(al.entries.len(), 2);
        let a = al.apply(vec![
            diag(
                RuleId::PanicDiscipline,
                "crates/engine/src/expr.rs",
                "x.expect(\"NaN\")",
            ),
            diag(
                RuleId::PanicDiscipline,
                "crates/engine/src/expr.rs",
                "y.unwrap()",
            ),
            diag(
                RuleId::AllocHygiene,
                "crates/engine/src/exec.rs",
                "rows.to_vec()",
            ),
        ]);
        assert_eq!(a.allowed.len(), 2);
        assert_eq!(a.violations.len(), 1);
        assert!(a.violations[0].snippet.contains("unwrap"));
        assert!(a.errors.is_empty());
    }

    #[test]
    fn budget_overrun_and_stale_entries_error() {
        let al = Allowlist::parse(LIST).unwrap();
        let a = al.apply(vec![
            diag(
                RuleId::PanicDiscipline,
                "crates/engine/src/expr.rs",
                "a.expect(\"1\")",
            ),
            diag(
                RuleId::PanicDiscipline,
                "crates/engine/src/expr.rs",
                "b.expect(\"2\")",
            ),
            diag(
                RuleId::PanicDiscipline,
                "crates/engine/src/expr.rs",
                "c.expect(\"3\")",
            ),
        ]);
        assert_eq!(a.errors.len(), 2); // overrun + stale alloc entry
        assert!(a.errors[0].contains("stale") || a.errors[1].contains("stale"));
        assert!(a.errors.iter().any(|e| e.contains("exceeded")));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Allowlist::parse("nope | x.rs | * | 1").is_err());
        assert!(Allowlist::parse("bad-rule | x.rs | * | 1 | why").is_err());
        assert!(Allowlist::parse("determinism | x.rs | * | many | why").is_err());
        assert!(Allowlist::parse("determinism | x.rs | * | 1 |").is_err());
    }
}
