//! uaq-lint: the workspace invariant linter.
//!
//! Replaces the `grep` gates that used to guard the repo's contracts in CI
//! with tested, token-level analyses (see ROADMAP.md PR 10):
//!
//! - `determinism` — no wall-clock reads in the prediction crates;
//! - `poison-safety` — no `.lock().unwrap()`-family calls in `uaq-service`
//!   outside `src/sync.rs`, including let-bound lock results;
//! - `panic-discipline` — audited unwrap/expect/index budget in the
//!   prediction crates, justified in `lint-allowlist.txt`;
//! - `alloc-hygiene` — no buffer copies in the executor's hot modules.
//!
//! Std-only on purpose: the linter gates the workspace's dependency
//! discipline, so it must not import anything itself. The lexer in
//! [`lexer`] is the intended front half of the ROADMAP item 1 SQL
//! tokenizer.

pub mod allowlist;
pub mod diag;
pub mod lexer;
pub mod rules;

use allowlist::{Allowlist, Applied};
use diag::{Diagnostic, RuleId, SourceFile};
use rules::Rule;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// What to run: which rules are denied (checked) and which allowlist to
/// excuse findings through.
pub struct Config {
    pub root: PathBuf,
    pub deny: BTreeSet<RuleId>,
    pub allowlist: Option<Allowlist>,
}

/// Outcome of a workspace run.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Diagnostic>,
    pub allowed: Vec<Diagnostic>,
    /// Allowlist budget overruns and stale entries (also build failures).
    pub allowlist_errors: Vec<String>,
    /// Files that failed to lex cleanly, with the error (build failure:
    /// a file the lexer cannot follow is a file the rules cannot audit).
    pub lex_errors: Vec<String>,
    pub files_scanned: usize,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.allowlist_errors.is_empty() && self.lex_errors.is_empty()
    }
}

/// Lints every `.rs` file under `root/crates` against the denied rules.
pub fn run_workspace(cfg: &Config) -> std::io::Result<Report> {
    let rules: Vec<Box<dyn Rule>> = rules::all_rules()
        .into_iter()
        .filter(|r| cfg.deny.contains(&r.id()))
        .collect();
    let mut files = Vec::new();
    collect_rs_files(&cfg.root.join("crates"), &mut files)?;
    files.sort();

    let mut report = Report::default();
    let mut diags = Vec::new();
    for path in files {
        let rel = match relative(&cfg.root, &path) {
            Some(r) => r,
            None => continue,
        };
        let active: Vec<&Box<dyn Rule>> = rules.iter().filter(|r| r.applies_to(&rel)).collect();
        if active.is_empty() {
            continue;
        }
        let src = std::fs::read_to_string(&path)?;
        let file = SourceFile::parse(rel.clone(), src);
        report.files_scanned += 1;
        for e in &file.lex_errors {
            report
                .lex_errors
                .push(format!("{rel}:{}: {}", e.line, e.message));
        }
        for rule in active {
            diags.extend(rule.check(&file));
        }
    }
    diags.sort_by_key(|d| (d.file.clone(), d.line, d.rule));

    let Applied {
        violations,
        allowed,
        errors,
    } = match &cfg.allowlist {
        Some(al) => al.apply(diags),
        None => Applied {
            violations: diags,
            ..Applied::default()
        },
    };
    report.violations = violations;
    report.allowed = allowed;
    report.allowlist_errors = errors;
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative, '/'-separated path, or `None` if outside the root.
fn relative(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    Some(s)
}

/// Loads the allowlist from its conventional location, if present.
pub fn load_allowlist(root: &Path) -> Result<Option<Allowlist>, String> {
    let path = root.join("lint-allowlist.txt");
    if !path.exists() {
        return Ok(None);
    }
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Allowlist::parse(&text).map(Some)
}
