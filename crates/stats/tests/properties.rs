//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use uaq_stats::{
    erf, nnls, pearson, spearman, std_normal_cdf, std_normal_quantile, Matrix, Normal, Rng,
    Welford, Zipf,
};

fn finite_f64(range: std::ops::Range<f64>) -> impl Strategy<Value = f64> {
    range.prop_filter("finite", |x| x.is_finite())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- erf / Φ ----

    #[test]
    fn erf_is_odd_and_bounded(x in finite_f64(-6.0..6.0)) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
        prop_assert!(erf(x).abs() <= 1.0);
    }

    #[test]
    fn cdf_is_monotone(a in finite_f64(-6.0..6.0), b in finite_f64(-6.0..6.0)) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(std_normal_cdf(lo) <= std_normal_cdf(hi) + 1e-15);
    }

    #[test]
    fn quantile_roundtrips(p in 1e-6..0.999_999f64) {
        let x = std_normal_quantile(p);
        prop_assert!((std_normal_cdf(x) - p).abs() < 1e-9);
    }

    // ---- Normal moments ----

    #[test]
    fn normal_moment_identities(mean in finite_f64(-50.0..50.0), sd in finite_f64(0.01..10.0)) {
        let x = Normal::new(mean, sd * sd);
        // Var[X²] = E[X⁴] − E[X²]² must match the closed form.
        let var_sq = x.raw_moment(4) - x.raw_moment(2) * x.raw_moment(2);
        prop_assert!((x.var_of_square() - var_sq).abs() <= 1e-9 * var_sq.abs().max(1.0));
        // Cov(X, X²) = E[X³] − E[X]E[X²].
        let cov = x.raw_moment(3) - x.raw_moment(1) * x.raw_moment(2);
        prop_assert!((x.cov_x_x2() - cov).abs() <= 1e-9 * cov.abs().max(1.0));
    }

    #[test]
    fn confidence_interval_nests(mean in finite_f64(-100.0..100.0), sd in finite_f64(0.01..10.0),
                                 p1 in 0.05..0.9f64, p2 in 0.05..0.9f64) {
        let x = Normal::new(mean, sd * sd);
        let (narrow, wide) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let (l1, h1) = x.confidence_interval(narrow);
        let (l2, h2) = x.confidence_interval(wide);
        prop_assert!(l2 <= l1 && h1 <= h2);
    }

    // ---- correlations ----

    #[test]
    fn correlations_bounded_and_symmetric(seed in any::<u64>(), n in 3usize..40) {
        let mut rng = Rng::new(seed);
        let xs: Vec<f64> = (0..n).map(|_| rng.f64() * 100.0).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.f64() * 100.0).collect();
        let rp = pearson(&xs, &ys);
        let rs = spearman(&xs, &ys);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rp));
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rs));
        prop_assert!((pearson(&ys, &xs) - rp).abs() < 1e-12);
        prop_assert!((spearman(&ys, &xs) - rs).abs() < 1e-12);
    }

    #[test]
    fn spearman_invariant_under_monotone_transform(seed in any::<u64>(), n in 4usize..30) {
        let mut rng = Rng::new(seed);
        // Distinct values so ranks are unambiguous.
        let xs: Vec<f64> = (0..n).map(|i| i as f64 + rng.f64() * 0.5).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.f64() * 10.0).collect();
        let transformed: Vec<f64> = xs.iter().map(|x| (x * 0.3).exp()).collect();
        prop_assert!((spearman(&xs, &ys) - spearman(&transformed, &ys)).abs() < 1e-9);
    }

    // ---- NNLS ----

    #[test]
    fn nnls_is_feasible_and_locally_optimal(seed in any::<u64>(), rows in 3usize..12, cols in 1usize..4) {
        let mut rng = Rng::new(seed);
        let a = Matrix::from_rows(
            (0..rows).map(|_| (0..cols).map(|_| rng.f64() * 2.0 - 0.5).collect()).collect(),
        );
        let y: Vec<f64> = (0..rows).map(|_| rng.f64() * 4.0 - 2.0).collect();
        let sol = nnls(&a, &y);
        prop_assert!(sol.x.iter().all(|&v| v >= 0.0));
        // Perturbing any coordinate (staying feasible) must not beat the
        // solution (first-order local optimality of a convex problem =
        // global optimality).
        let base = sol.residual_norm;
        for i in 0..cols {
            for delta in [1e-4, -1e-4] {
                let mut x = sol.x.clone();
                x[i] += delta;
                if x[i] < 0.0 {
                    continue;
                }
                let r = a
                    .mul_vec(&x)
                    .iter()
                    .zip(&y)
                    .map(|(p, t)| (p - t) * (p - t))
                    .sum::<f64>()
                    .sqrt();
                prop_assert!(r >= base - 1e-7, "perturbation improved: {r} < {base}");
            }
        }
    }

    // ---- Zipf ----

    #[test]
    fn zipf_pmf_is_a_distribution(n in 1usize..200, z in 0.0..2.5f64) {
        let d = Zipf::new(n, z);
        let total: f64 = (0..n).map(|k| d.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Monotone non-increasing in rank.
        for k in 1..n {
            prop_assert!(d.pmf(k) <= d.pmf(k - 1) + 1e-12);
        }
    }

    // ---- Welford ----

    #[test]
    fn welford_matches_two_pass(seed in any::<u64>(), n in 2usize..200) {
        let mut rng = Rng::new(seed);
        let xs: Vec<f64> = (0..n).map(|_| rng.f64() * 1000.0 - 500.0).collect();
        let w: Welford = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        prop_assert!((w.mean() - mean).abs() < 1e-8);
        prop_assert!((w.sample_variance() - var).abs() < 1e-6 * var.max(1.0));
    }

    // ---- RNG ranges ----

    #[test]
    fn rng_ranges_hold(seed in any::<u64>(), lo in -1000i64..0, hi in 0i64..1000) {
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            let v = rng.i64_range(lo, hi);
            prop_assert!(v >= lo && v <= hi);
            let u = rng.u64_below(100);
            prop_assert!(u < 100);
        }
    }
}
