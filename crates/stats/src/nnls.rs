//! Non-negative least squares (Lawson–Hanson active set method).
//!
//! The paper fits the coefficients `b` of the logical cost functions by
//! solving `min ‖Ab − y‖ s.t. b ≥ 0` with Scilab's `qpsolve` (§4.2, noting
//! that "other equivalent solvers could also be used"). Our problems are tiny
//! (≤ 4 unknowns, tens of rows) so a dense active-set solver is exact and
//! fast.

/// Dense row-major matrix, only what NNLS needs.
#[derive(Debug, Clone)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        assert!(!rows.is_empty(), "empty matrix");
        let cols = rows[0].len();
        assert!(cols > 0, "zero-column matrix");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in &rows {
            assert_eq!(r.len(), cols, "ragged matrix rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from flat row-major data with `cols` columns.
    pub fn from_flat(data: Vec<f64>, cols: usize) -> Self {
        assert!(cols > 0, "zero-column matrix");
        assert_eq!(data.len() % cols, 0, "flat data not a multiple of cols");
        assert!(!data.is_empty(), "empty matrix");
        Self {
            rows: data.len() / cols,
            cols,
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// `A x` for a dense vector `x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| {
                let row = &self.data[r * self.cols..(r + 1) * self.cols];
                row.iter().zip(x).map(|(a, b)| a * b).sum()
            })
            .collect()
    }

    /// `Aᵀ v`.
    pub fn tr_mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for (r, &vr) in v.iter().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &a) in out.iter_mut().zip(row) {
                *o += a * vr;
            }
        }
        out
    }
}

/// Solves the square system `M z = b` by Gaussian elimination with partial
/// pivoting. Returns `None` if `M` is (numerically) singular.
fn solve_square(mut m: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let (pivot_row, pivot_abs) = (col..n)
            .map(|r| (r, m[r][col].abs()))
            .max_by(|a, b| a.1.total_cmp(&b.1))?;
        if pivot_abs < 1e-12 {
            return None;
        }
        m.swap(col, pivot_row);
        b.swap(col, pivot_row);
        for r in col + 1..n {
            let factor = m[r][col] / m[col][col];
            if factor == 0.0 {
                continue;
            }
            let (pivot, rest) = m.split_at_mut(r);
            let pivot_vals = pivot[col][col..n].to_vec();
            for (mc, pc) in rest[0][col..n].iter_mut().zip(&pivot_vals) {
                *mc -= factor * pc;
            }
            b[r] -= factor * b[col];
        }
    }
    let mut z = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for c in row + 1..n {
            acc -= m[row][c] * z[c];
        }
        z[row] = acc / m[row][row];
    }
    Some(z)
}

/// Unconstrained least squares restricted to the columns in `passive`,
/// solved from the precomputed Gram matrix / right-hand side (normal
/// equations; our systems are tiny and well scaled).
fn ls_on_passive(gram: &[Vec<f64>], b: &[f64], passive: &[usize]) -> Option<Vec<f64>> {
    let p = passive.len();
    let mut ata = vec![vec![0.0; p]; p];
    let mut aty = vec![0.0; p];
    for (i, &ci) in passive.iter().enumerate() {
        aty[i] = b[ci];
        for (j, &cj) in passive.iter().enumerate() {
            ata[i][j] = gram[ci][cj];
        }
    }
    // A whisper of ridge for near-collinear grids (e.g. a degenerate
    // fitting interval where X is constant).
    for (i, row) in ata.iter_mut().enumerate() {
        row[i] += 1e-12 * (1.0 + row[i]);
    }
    solve_square(ata, aty)
}

/// Result of an NNLS solve.
#[derive(Debug, Clone)]
pub struct NnlsSolution {
    /// Optimal non-negative coefficients.
    pub x: Vec<f64>,
    /// `‖Ax − y‖₂` at the optimum.
    pub residual_norm: f64,
}

/// Lawson–Hanson non-negative least squares: `min ‖Ax − y‖₂ s.t. x ≥ 0`.
pub fn nnls(a: &Matrix, y: &[f64]) -> NnlsSolution {
    assert_eq!(a.rows(), y.len(), "nnls: dimension mismatch");
    let n = a.cols();
    let mut x = vec![0.0; n];
    let mut in_passive = vec![false; n];
    let tol = 1e-10
        * a.data.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0)
        * y.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);

    // Precompute the Gram matrix `G = AᵀA` and `b = Aᵀy` once: every
    // gradient evaluation and every passive-set solve below reads these
    // (O(n²)) instead of rescanning the full design matrix (O(rows·n²)
    // per active-set iteration).
    let mut gram = vec![vec![0.0f64; n]; n];
    for r in 0..a.rows() {
        for (i, row) in gram.iter_mut().enumerate() {
            let ai = a.at(r, i);
            if ai == 0.0 {
                continue;
            }
            for (j, g) in row.iter_mut().enumerate().skip(i) {
                *g += ai * a.at(r, j);
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..n {
        let (head, tail) = gram.split_at_mut(i);
        for (j, row) in head.iter().enumerate() {
            tail[0][j] = row[i];
        }
    }
    let b = a.tr_mul_vec(y);

    for _outer in 0..10 * n.max(3) {
        // Gradient of 0.5‖Ax − y‖²: w = Aᵀ(y − Ax) = b − Gx.
        let w: Vec<f64> = b
            .iter()
            .zip(&gram)
            .map(|(bi, gi)| bi - gi.iter().zip(&x).map(|(g, xj)| g * xj).sum::<f64>())
            .collect();

        let candidate = (0..n)
            .filter(|&i| !in_passive[i])
            .max_by(|&i, &j| w[i].total_cmp(&w[j]));
        let Some(j) = candidate else { break };
        if w[j] <= tol {
            break;
        }
        in_passive[j] = true;

        // Inner loop: keep the passive solution feasible.
        for _inner in 0..10 * n.max(3) {
            let passive: Vec<usize> = (0..n).filter(|&i| in_passive[i]).collect();
            let Some(z_p) = ls_on_passive(&gram, &b, &passive) else {
                // Singular subproblem: drop the newest variable and give up on it.
                in_passive[j] = false;
                break;
            };
            let mut z = vec![0.0; n];
            for (&col, &val) in passive.iter().zip(&z_p) {
                z[col] = val;
            }
            if passive.iter().all(|&i| z[i] > tol) {
                x = z;
                break;
            }
            // Step toward z while staying feasible.
            let mut alpha = f64::INFINITY;
            for &i in &passive {
                if z[i] <= tol {
                    let denom = x[i] - z[i];
                    if denom > 0.0 {
                        alpha = alpha.min(x[i] / denom);
                    }
                }
            }
            if !alpha.is_finite() {
                x = z.iter().map(|v| v.max(0.0)).collect();
                break;
            }
            for i in 0..n {
                x[i] += alpha * (z[i] - x[i]);
            }
            for i in 0..n {
                if in_passive[i] && x[i] <= tol {
                    x[i] = 0.0;
                    in_passive[i] = false;
                }
            }
        }
    }

    let ax = a.mul_vec(&x);
    let residual_norm = y
        .iter()
        .zip(&ax)
        .map(|(yi, axi)| (yi - axi) * (yi - axi))
        .sum::<f64>()
        .sqrt();
    NnlsSolution { x, residual_norm }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn residual(a: &Matrix, x: &[f64], y: &[f64]) -> f64 {
        a.mul_vec(x)
            .iter()
            .zip(y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn exact_recovery_when_unconstrained_optimum_is_nonnegative() {
        // y = 3x + 2 on a grid: coefficients recoverable exactly.
        let xs = [0.0, 0.25, 0.5, 0.75, 1.0];
        let a = Matrix::from_rows(xs.iter().map(|&x| vec![x, 1.0]).collect());
        let y: Vec<f64> = xs.iter().map(|&x| 3.0 * x + 2.0).collect();
        let sol = nnls(&a, &y);
        assert!((sol.x[0] - 3.0).abs() < 1e-8, "{:?}", sol.x);
        assert!((sol.x[1] - 2.0).abs() < 1e-8, "{:?}", sol.x);
        assert!(sol.residual_norm < 1e-8);
    }

    #[test]
    fn clamps_negative_component() {
        // y decreases in x, but coefficient must be >= 0: optimum is slope 0.
        let xs = [0.0, 0.5, 1.0];
        let a = Matrix::from_rows(xs.iter().map(|&x| vec![x]).collect());
        let y = vec![0.0, -1.0, -2.0];
        let sol = nnls(&a, &y);
        assert!(sol.x[0].abs() < 1e-10, "{:?}", sol.x);
    }

    #[test]
    fn quadratic_fit_matches_generator() {
        // Fit C4'-style columns [x², x, 1] against a true quadratic.
        let a = Matrix::from_rows(
            (0..=10)
                .map(|i| {
                    let x = i as f64 / 10.0;
                    vec![x * x, x, 1.0]
                })
                .collect(),
        );
        let y: Vec<f64> = (0..=10)
            .map(|i| {
                let x = i as f64 / 10.0;
                5.0 * x * x + 1.0 * x + 0.5
            })
            .collect();
        let sol = nnls(&a, &y);
        assert!((sol.x[0] - 5.0).abs() < 1e-6);
        assert!((sol.x[1] - 1.0).abs() < 1e-6);
        assert!((sol.x[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn nlogn_is_well_approximated_by_quadratic() {
        // The C4' rationale: N log N over a narrow interval fits a quadratic
        // well. Check the relative residual is small.
        let lo = 1000.0;
        let hi = 2000.0;
        let pts: Vec<f64> = (0..=10).map(|i| lo + (hi - lo) * i as f64 / 10.0).collect();
        let a = Matrix::from_rows(pts.iter().map(|&n| vec![n * n, n, 1.0]).collect());
        let y: Vec<f64> = pts.iter().map(|&n| n * n.log2()).collect();
        let sol = nnls(&a, &y);
        let rel = sol.residual_norm / y.iter().map(|v| v * v).sum::<f64>().sqrt();
        // The non-negativity constraint bites (the unconstrained optimum has a
        // negative intercept), but the fit stays well under 1% relative error.
        assert!(rel < 0.01, "relative residual {rel}");
    }

    #[test]
    fn solution_is_optimal_versus_grid_search() {
        // 2-variable problem: compare against a dense feasible grid.
        let a = Matrix::from_rows(vec![
            vec![1.0, 2.0],
            vec![2.0, 0.5],
            vec![0.3, 1.7],
            vec![1.1, 1.1],
        ]);
        let y = vec![2.0, 1.0, 3.0, 0.2];
        let sol = nnls(&a, &y);
        let best_feasible = (0..=200)
            .flat_map(|i| (0..=200).map(move |j| (i as f64 / 50.0, j as f64 / 50.0)))
            .map(|(x0, x1)| residual(&a, &[x0, x1], &y))
            .fold(f64::INFINITY, f64::min);
        assert!(
            sol.residual_norm <= best_feasible + 1e-6,
            "nnls {} vs grid {}",
            sol.residual_norm,
            best_feasible
        );
    }

    #[test]
    fn kkt_conditions_hold_on_random_problems() {
        let mut rng = Rng::new(2024);
        for _ in 0..50 {
            let rows = 5 + rng.usize_below(10);
            let cols = 1 + rng.usize_below(4);
            let a = Matrix::from_rows(
                (0..rows)
                    .map(|_| (0..cols).map(|_| rng.f64() * 4.0 - 1.0).collect())
                    .collect(),
            );
            let y: Vec<f64> = (0..rows).map(|_| rng.f64() * 10.0 - 5.0).collect();
            let sol = nnls(&a, &y);
            let ax = a.mul_vec(&sol.x);
            let resid: Vec<f64> = y.iter().zip(&ax).map(|(yi, axi)| yi - axi).collect();
            let w = a.tr_mul_vec(&resid);
            for (i, &xi) in sol.x.iter().enumerate() {
                assert!(xi >= 0.0, "infeasible x");
                if xi > 1e-8 {
                    // Active coordinates: zero gradient.
                    assert!(w[i].abs() < 1e-5, "grad {} at active coord", w[i]);
                } else {
                    // Bound coordinates: gradient must not be ascent direction.
                    assert!(w[i] < 1e-5, "grad {} at bound coord", w[i]);
                }
            }
        }
    }

    #[test]
    fn zero_rhs_gives_zero_solution() {
        let a = Matrix::from_rows(vec![vec![1.0, 0.5], vec![0.5, 1.0]]);
        let sol = nnls(&a, &[0.0, 0.0]);
        assert!(sol.x.iter().all(|&v| v == 0.0));
        assert_eq!(sol.residual_norm, 0.0);
    }
}
