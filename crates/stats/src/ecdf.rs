//! The distributional-proximity metric `D_n` of §6.3.
//!
//! For each query the predictor emits `T_i ~ N(μ_i, σ_i²)`. The normalized
//! actual error is `e'_i = |t_i − μ_i| / σ_i`; under the predicted model
//! `Pr(E'_i ≤ α) = 2Φ(α) − 1` for every query. The empirical counterpart is
//! `Pr_n(α) = (1/n) Σ 1[e'_i ≤ α]`, and `D_n(α) = |Pr_n(α) − Pr(α)|`. The
//! paper reports the average of `D_n(α)` over an α-grid in `(0, 6)`.

use crate::normal::Normal;

/// The α ticks the paper uses for its Fig. 5 plots.
pub const FIG5_ALPHAS: [f64; 16] = [
    0.1, 0.3, 0.5, 0.7, 0.9, 1.0, 1.2, 1.5, 1.8, 2.0, 2.2, 2.5, 2.8, 3.0, 3.5, 4.0,
];

/// Evenly spaced α grid over `(0, hi]` with `n` points, mirroring the paper's
/// "generated α's from the interval (0, 6)".
pub fn alpha_grid(n: usize, hi: f64) -> Vec<f64> {
    assert!(n > 0 && hi > 0.0);
    (1..=n).map(|i| hi * i as f64 / n as f64).collect()
}

/// Normalized errors `e'_i = |t_i − μ_i| / σ_i`.
///
/// Queries with `σ_i == 0` are skipped only if their error is also zero is
/// impossible to normalise; we map them to `+∞` when the error is nonzero
/// (the prediction claimed certainty and was wrong) and `0` otherwise.
pub fn normalized_errors(
    predicted_means: &[f64],
    predicted_stds: &[f64],
    actuals: &[f64],
) -> Vec<f64> {
    assert_eq!(predicted_means.len(), predicted_stds.len());
    assert_eq!(predicted_means.len(), actuals.len());
    predicted_means
        .iter()
        .zip(predicted_stds)
        .zip(actuals)
        .map(|((&mu, &sigma), &t)| {
            let e = (t - mu).abs();
            if sigma > 0.0 {
                e / sigma
            } else if e == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        })
        .collect()
}

/// Empirical `Pr_n(α) = (1/n) Σ 1[e' ≤ α]`.
pub fn empirical_pr(normalized_errors: &[f64], alpha: f64) -> f64 {
    if normalized_errors.is_empty() {
        return 0.0;
    }
    let hits = normalized_errors.iter().filter(|&&e| e <= alpha).count();
    hits as f64 / normalized_errors.len() as f64
}

/// Model `Pr(α) = 2Φ(α) − 1`.
pub fn model_pr(alpha: f64) -> f64 {
    Normal::prob_within_alpha_sigmas(alpha)
}

/// `D_n(α) = |Pr_n(α) − Pr(α)|`.
pub fn dn_at(normalized_errors: &[f64], alpha: f64) -> f64 {
    (empirical_pr(normalized_errors, alpha) - model_pr(alpha)).abs()
}

/// Average `D_n` over an α grid (the scalar the paper reports in Table 5).
pub fn dn_average(normalized_errors: &[f64], alphas: &[f64]) -> f64 {
    assert!(!alphas.is_empty());
    alphas
        .iter()
        .map(|&a| dn_at(normalized_errors, a))
        .sum::<f64>()
        / alphas.len() as f64
}

/// Default `D_n`: 60 evenly spaced α values over `(0, 6]`.
pub fn dn(normalized_errors: &[f64]) -> f64 {
    dn_average(normalized_errors, &alpha_grid(60, 6.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn alpha_grid_shape() {
        let g = alpha_grid(60, 6.0);
        assert_eq!(g.len(), 60);
        assert!((g[0] - 0.1).abs() < 1e-12);
        assert!((g[59] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_errors_basic() {
        let e = normalized_errors(&[10.0, 20.0], &[2.0, 5.0], &[14.0, 10.0]);
        assert_eq!(e, vec![2.0, 2.0]);
    }

    #[test]
    fn normalized_errors_zero_sigma() {
        let e = normalized_errors(&[10.0, 10.0], &[0.0, 0.0], &[10.0, 12.0]);
        assert_eq!(e[0], 0.0);
        assert!(e[1].is_infinite());
    }

    #[test]
    fn empirical_pr_counts() {
        let e = [0.5, 1.5, 2.5, 3.5];
        assert_eq!(empirical_pr(&e, 1.0), 0.25);
        assert_eq!(empirical_pr(&e, 3.0), 0.75);
        assert_eq!(empirical_pr(&e, 10.0), 1.0);
    }

    #[test]
    fn model_pr_reference() {
        assert!((model_pr(1.0) - 0.682_689_492).abs() < 1e-6);
        assert!((model_pr(2.0) - 0.954_499_736).abs() < 1e-6);
    }

    #[test]
    fn dn_zero_for_perfectly_calibrated_predictions() {
        // If the actuals really are N(μ, σ²) draws, D_n should be small.
        let mut rng = Rng::new(77);
        let n = 20_000;
        let mus: Vec<f64> = (0..n).map(|_| rng.f64() * 100.0).collect();
        let sigmas: Vec<f64> = (0..n).map(|_| 1.0 + rng.f64() * 9.0).collect();
        let actuals: Vec<f64> = mus
            .iter()
            .zip(&sigmas)
            .map(|(&m, &s)| rng.normal(m, s))
            .collect();
        let e = normalized_errors(&mus, &sigmas, &actuals);
        assert!(dn(&e) < 0.01, "dn={}", dn(&e));
    }

    #[test]
    fn dn_large_for_overconfident_predictions() {
        // Predicted σ ten times too small ⇒ errors look huge in σ units.
        let mut rng = Rng::new(78);
        let n = 5_000;
        let mus = vec![50.0; n];
        let claimed: Vec<f64> = vec![1.0; n];
        let actuals: Vec<f64> = (0..n).map(|_| rng.normal(50.0, 10.0)).collect();
        let e = normalized_errors(&mus, &claimed, &actuals);
        assert!(dn(&e) > 0.3, "dn={}", dn(&e));
    }

    #[test]
    fn dn_bounded_by_one() {
        let e = vec![f64::INFINITY; 10];
        let d = dn(&e);
        assert!(d <= 1.0 && d > 0.8);
    }
}
