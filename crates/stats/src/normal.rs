//! The (possibly degenerate) normal distribution plus the non-central moment
//! table and product-moment identities that the paper's covariance algebra
//! relies on (Table 3, Lemma 4, Lemma 8, §5.3.1).

use crate::erf::{std_normal_cdf, std_normal_quantile};
use crate::rng::Rng;

/// A normal distribution `N(mean, var)`. `var == 0` is allowed and denotes a
/// point mass (the paper uses e.g. `f ~ N(b0, 0)` for constant cost
/// functions, and `S² = 0` for aggregate selectivities).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    var: f64,
}

impl Normal {
    /// Creates `N(mean, var)`; panics on negative or non-finite variance.
    pub fn new(mean: f64, var: f64) -> Self {
        assert!(
            var >= 0.0 && var.is_finite() && mean.is_finite(),
            "invalid normal parameters: mean={mean}, var={var}"
        );
        Self { mean, var }
    }

    /// Point mass at `x` (variance zero).
    pub fn point(x: f64) -> Self {
        Self::new(x, 0.0)
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    pub fn var(&self) -> f64 {
        self.var
    }

    pub fn std_dev(&self) -> f64 {
        self.var.sqrt()
    }

    /// CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.var == 0.0 {
            return if x < self.mean { 0.0 } else { 1.0 };
        }
        std_normal_cdf((x - self.mean) / self.std_dev())
    }

    /// Quantile (inverse CDF) at probability `p ∈ (0, 1)` — the **open**
    /// interval: a normal has unbounded support, so `p = 0` and `p = 1`
    /// have no finite quantile. For non-degenerate distributions the
    /// boundary panics in all builds (via [`std_normal_quantile`]); the
    /// `var == 0` point-mass shortcut would otherwise silently accept
    /// garbage `p`, so the domain is asserted here too (debug builds).
    pub fn quantile(&self, p: f64) -> f64 {
        debug_assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
        if self.var == 0.0 {
            return self.mean;
        }
        self.mean + self.std_dev() * std_normal_quantile(p)
    }

    /// Central confidence interval containing probability mass `p`.
    ///
    /// `p` must lie in `[0, 1)`: `p = 0` collapses to the mean, and
    /// `p ≥ 1` panics — a normal's 100% interval is unbounded. Interior
    /// values only ever feed [`Self::quantile`] probabilities strictly
    /// inside `(0, 1)`.
    pub fn confidence_interval(&self, p: f64) -> (f64, f64) {
        assert!((0.0..1.0).contains(&p), "p must be in [0,1), got {p}");
        if self.var == 0.0 || p == 0.0 {
            return (self.mean, self.mean);
        }
        let half = (1.0 - p) / 2.0;
        (self.quantile(half), self.quantile(1.0 - half))
    }

    /// `Pr(|X − mean| <= alpha * std_dev) = 2Φ(alpha) − 1` — the predicted
    /// error likelihood `Pr(α)` of §6.3.
    pub fn prob_within_alpha_sigmas(alpha: f64) -> f64 {
        assert!(alpha >= 0.0);
        2.0 * std_normal_cdf(alpha) - 1.0
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        rng.normal(self.mean, self.std_dev())
    }

    /// Non-central moment `E[X^k]` for `k <= 4` (paper Table 3).
    pub fn raw_moment(&self, k: u32) -> f64 {
        let (m, v) = (self.mean, self.var);
        match k {
            0 => 1.0,
            1 => m,
            2 => m * m + v,
            3 => m * m * m + 3.0 * m * v,
            4 => m.powi(4) + 6.0 * m * m * v + 3.0 * v * v,
            _ => panic!("raw_moment only implemented for k <= 4, got {k}"),
        }
    }

    /// `Var[X^2] = 2σ²(2μ² + σ²)` (from Table 3 moments).
    pub fn var_of_square(&self) -> f64 {
        2.0 * self.var * (2.0 * self.mean * self.mean + self.var)
    }

    /// `Cov(X, X²) = 2μσ²` (used in the Lemma 4 proof).
    pub fn cov_x_x2(&self) -> f64 {
        2.0 * self.mean * self.var
    }

    /// Sum of independent normals.
    pub fn add_independent(&self, other: &Normal) -> Normal {
        Normal::new(self.mean + other.mean, self.var + other.var)
    }

    /// Affine transform `aX + b`.
    pub fn affine(&self, a: f64, b: f64) -> Normal {
        Normal::new(a * self.mean + b, a * a * self.var)
    }
}

/// Moments of the product `XY` of two *independent* normals (used for the
/// `X_l X_r` term of binary cost functions; the paper cites the normal
/// product distribution [Aroian 1947] and approximates it by a normal with
/// matching mean/variance, C6' in §5.2.1).
pub mod product {
    use super::Normal;

    /// `E[XY] = μ_x μ_y` for independent X, Y.
    pub fn mean(x: &Normal, y: &Normal) -> f64 {
        x.mean() * y.mean()
    }

    /// `Var[XY] = μ_x²σ_y² + μ_y²σ_x² + σ_x²σ_y²` for independent X, Y.
    pub fn var(x: &Normal, y: &Normal) -> f64 {
        x.mean() * x.mean() * y.var() + y.mean() * y.mean() * x.var() + x.var() * y.var()
    }

    /// `Cov(XY, X) = μ_y σ_x²` for independent X, Y.
    pub fn cov_with_left(x: &Normal, y: &Normal) -> f64 {
        y.mean() * x.var()
    }

    /// `Cov(XY, Y) = μ_x σ_y²` for independent X, Y.
    pub fn cov_with_right(x: &Normal, y: &Normal) -> f64 {
        x.mean() * y.var()
    }
}

/// Lemma 4: variance of `f = b0·X² + b1·X + b2` with `X ~ N(μ, σ²)`:
/// `Var[f] = σ²[(b1 + 2 b0 μ)² + 2 b0² σ²]`.
pub fn lemma4_var(b0: f64, b1: f64, x: &Normal) -> f64 {
    let (mu, s2) = (x.mean(), x.var());
    s2 * ((b1 + 2.0 * b0 * mu).powi(2) + 2.0 * b0 * b0 * s2)
}

/// Lemma 8: variance of `f = b0·X_l X_r + b1·X_l + b2·X_r + b3` with
/// independent `X_l ~ N(μ_l, σ_l²)`, `X_r ~ N(μ_r, σ_r²)`:
/// `Var[f] = σ_l²(b0 μ_r + b1)² + σ_r²(b0 μ_l + b2)² + b0² σ_l² σ_r²`.
pub fn lemma8_var(b0: f64, b1: f64, b2: f64, xl: &Normal, xr: &Normal) -> f64 {
    let (ml, vl) = (xl.mean(), xl.var());
    let (mr, vr) = (xr.mean(), xr.var());
    vl * (b0 * mr + b1).powi(2) + vr * (b0 * ml + b2).powi(2) + b0 * b0 * vl * vr
}

/// Moments of the product `F·C` of independent random variables `F` and `C`
/// (cost function × cost unit, §5.2.2):
/// `E[FC] = E[F]E[C]`,
/// `Var[FC] = E[F]²Var[C] + E[C]²Var[F] + Var[F]Var[C]`.
pub fn independent_product_mean_var(
    f_mean: f64,
    f_var: f64,
    c_mean: f64,
    c_var: f64,
) -> (f64, f64) {
    let mean = f_mean * c_mean;
    let var = f_mean * f_mean * c_var + c_mean * c_mean * f_var + f_var * c_var;
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc_moments(f: impl Fn(f64, f64) -> f64, x: Normal, y: Normal, n: usize) -> (f64, f64) {
        let mut rng = Rng::new(987);
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let v = f(x.sample(&mut rng), y.sample(&mut rng));
            sum += v;
            sumsq += v * v;
        }
        let mean = sum / n as f64;
        (mean, sumsq / n as f64 - mean * mean)
    }

    #[test]
    fn raw_moments_match_table3() {
        let x = Normal::new(2.0, 3.0);
        assert_eq!(x.raw_moment(1), 2.0);
        assert_eq!(x.raw_moment(2), 7.0); // μ²+σ² = 4+3
        assert_eq!(x.raw_moment(3), 26.0); // μ³+3μσ² = 8+18
        assert_eq!(x.raw_moment(4), 115.0); // μ⁴+6μ²σ²+3σ⁴ = 16+72+27
    }

    #[test]
    fn var_of_square_formula() {
        let x = Normal::new(2.0, 3.0);
        // Var[X²] = E[X⁴] − E[X²]² = 115 − 49 = 66 = 2σ²(2μ²+σ²) = 6·11.
        assert!((x.var_of_square() - 66.0).abs() < 1e-12);
        assert!((x.var_of_square() - (x.raw_moment(4) - x.raw_moment(2).powi(2))).abs() < 1e-12);
    }

    #[test]
    fn cov_x_x2_formula() {
        let x = Normal::new(2.0, 3.0);
        // Cov(X, X²) = E[X³] − E[X]E[X²] = 26 − 14 = 12 = 2μσ².
        assert!((x.cov_x_x2() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_and_quantile_roundtrip() {
        let x = Normal::new(-1.5, 4.0);
        for p in [0.01, 0.3, 0.5, 0.9, 0.999] {
            let q = x.quantile(p);
            assert!((x.cdf(q) - p).abs() < 1e-10);
        }
    }

    #[test]
    fn confidence_interval_covers_mass() {
        let x = Normal::new(10.0, 25.0);
        let (lo, hi) = x.confidence_interval(0.95);
        assert!((x.cdf(hi) - x.cdf(lo) - 0.95).abs() < 1e-9);
        assert!((lo - (10.0 - 1.959_963_984_540_054 * 5.0)).abs() < 1e-6);
    }

    #[test]
    fn point_mass_behaviour() {
        let x = Normal::point(3.0);
        assert_eq!(x.cdf(2.9), 0.0);
        assert_eq!(x.cdf(3.0), 1.0);
        assert_eq!(x.quantile(0.3), 3.0);
        assert_eq!(x.var_of_square(), 0.0);
    }

    #[test]
    fn prob_within_alpha() {
        // 68–95–99.7 rule.
        assert!((Normal::prob_within_alpha_sigmas(1.0) - 0.682_689_492_137_086).abs() < 1e-9);
        assert!((Normal::prob_within_alpha_sigmas(2.0) - 0.954_499_736_103_642).abs() < 1e-9);
        assert!((Normal::prob_within_alpha_sigmas(3.0) - 0.997_300_203_936_74).abs() < 1e-9);
    }

    #[test]
    fn product_moments_match_monte_carlo() {
        let x = Normal::new(1.5, 0.4);
        let y = Normal::new(-2.0, 0.9);
        let (m, v) = mc_moments(|a, b| a * b, x, y, 400_000);
        assert!((product::mean(&x, &y) - m).abs() < 0.02, "{m}");
        assert!(
            (product::var(&x, &y) - v).abs() / v.abs().max(1.0) < 0.03,
            "{v}"
        );
    }

    #[test]
    fn lemma4_matches_monte_carlo() {
        let x = Normal::new(0.3, 0.01);
        let (b0, b1, b2) = (5.0, 2.0, 1.0);
        let f_var = lemma4_var(b0, b1, &x);
        let (_, v) = mc_moments(
            |a, _| b0 * a * a + b1 * a + b2,
            x,
            Normal::point(0.0),
            400_000,
        );
        assert!((f_var - v).abs() / f_var < 0.03, "analytic={f_var}, mc={v}");
    }

    #[test]
    fn lemma8_matches_monte_carlo() {
        let xl = Normal::new(0.4, 0.02);
        let xr = Normal::new(0.6, 0.03);
        let (b0, b1, b2, b3) = (4.0, 1.0, 2.0, 0.5);
        let f_var = lemma8_var(b0, b1, b2, &xl, &xr);
        let (_, v) = mc_moments(|a, b| b0 * a * b + b1 * a + b2 * b + b3, xl, xr, 400_000);
        assert!((f_var - v).abs() / f_var < 0.03, "analytic={f_var}, mc={v}");
    }

    #[test]
    fn independent_product_mean_var_matches_mc() {
        let f = Normal::new(100.0, 16.0);
        let c = Normal::new(0.5, 0.01);
        let (am, av) = independent_product_mean_var(f.mean(), f.var(), c.mean(), c.var());
        let (m, v) = mc_moments(|a, b| a * b, f, c, 400_000);
        assert!((am - m).abs() / am < 0.01);
        assert!((av - v).abs() / av < 0.05, "analytic={av}, mc={v}");
    }

    #[test]
    fn affine_transform() {
        let x = Normal::new(2.0, 9.0);
        let y = x.affine(2.0, 1.0);
        assert_eq!(y.mean(), 5.0);
        assert_eq!(y.var(), 36.0);
    }

    #[test]
    #[should_panic]
    fn negative_variance_rejected() {
        Normal::new(0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "p in (0,1)")]
    fn quantile_rejects_p_zero() {
        // Non-degenerate, so the domain check fires in every build profile
        // (std_normal_quantile asserts the open interval).
        Normal::new(1.0, 4.0).quantile(0.0);
    }

    #[test]
    #[should_panic(expected = "p in (0,1)")]
    fn quantile_rejects_p_one() {
        Normal::new(1.0, 4.0).quantile(1.0);
    }

    #[test]
    fn confidence_interval_boundary_values() {
        let x = Normal::new(3.0, 4.0);
        // p = 0 is the degenerate interval at the mean.
        assert_eq!(x.confidence_interval(0.0), (3.0, 3.0));
        // p just below 1 is finite and ordered.
        let (lo, hi) = x.confidence_interval(0.999_999);
        assert!(lo.is_finite() && hi.is_finite() && lo < hi);
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1)")]
    fn confidence_interval_rejects_p_one() {
        // The 100% interval of a normal is unbounded: p ≥ 1 panics rather
        // than feeding std_normal_quantile a boundary probability.
        Normal::new(0.0, 1.0).confidence_interval(1.0);
    }
}
