//! Streaming and batch summary statistics (Welford's algorithm).

/// Single-pass mean/variance accumulator (numerically stable).
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`n − 1` denominator); 0 for fewer than two
    /// observations, matching the paper's convention `S₁² = 0`.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (`n` denominator).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut w = Welford::new();
        for x in iter {
            w.push(x);
        }
        w
    }
}

/// Batch mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Batch unbiased sample variance.
pub fn sample_variance(xs: &[f64]) -> f64 {
    xs.iter().copied().collect::<Welford>().sample_variance()
}

/// Batch sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

/// Relative error `|est − truth| / truth`; if `truth == 0` returns 0 when the
/// estimate is also 0 and `|est|` otherwise (the estimate magnitude itself).
pub fn relative_error(est: f64, truth: f64) -> f64 {
    if truth != 0.0 {
        (est - truth).abs() / truth.abs()
    } else if est == 0.0 {
        0.0
    } else {
        est.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let w: Welford = xs.iter().copied().collect();
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Two-pass sample variance.
        let m = mean(&xs);
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.sample_variance() - v).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn variance_of_single_sample_is_zero() {
        let mut w = Welford::new();
        w.push(42.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
    }

    #[test]
    fn welford_stability_with_large_offset() {
        // Catastrophic cancellation check: values near 1e9 with unit variance.
        let mut rng = Rng::new(5150);
        let w: Welford = (0..100_000)
            .map(|_| 1.0e9 + rng.standard_normal())
            .collect();
        assert!(
            (w.sample_variance() - 1.0).abs() < 0.03,
            "{}",
            w.sample_variance()
        );
    }

    #[test]
    fn relative_error_cases() {
        assert_eq!(relative_error(11.0, 10.0), 0.1);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(3.0, 0.0), 3.0);
        assert_eq!(relative_error(9.0, -10.0), 1.9);
    }

    #[test]
    fn batch_helpers() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(mean(&xs), 2.0);
        assert!((sample_variance(&xs) - 1.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }
}
