//! Deterministic pseudo-random number generation.
//!
//! The whole reproduction must be bit-reproducible across runs and platforms,
//! so instead of depending on a specific `rand` crate version we implement a
//! small, well-known generator: xoshiro256** seeded through SplitMix64
//! (the seeding procedure recommended by the xoshiro authors).

/// SplitMix64 step; used to expand a single `u64` seed into a full state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** pseudo-random generator.
///
/// Not cryptographically secure; statistically strong enough for Monte Carlo
/// experiments (passes BigCrush per its authors).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Derives an independent child generator; useful for giving each query /
    /// operator / run its own stream without coupling consumption order.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64() ^ 0xA5A5_5A5A_DEAD_BEEF)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased rejection method.
    #[inline]
    pub fn u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "u64_below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, n)`.
    #[inline]
    pub fn usize_below(&mut self, n: usize) -> usize {
        self.u64_below(n as u64) as usize
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    #[inline]
    pub fn i64_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.u64_below(span) as i64
    }

    /// Standard normal draw via the Marsaglia polar method.
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal draw with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Log-normal draw: `exp(N(mu, sigma^2))`.
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.usize_below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Uniformly chooses one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.usize_below(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_close_to_half() {
        let mut rng = Rng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn u64_below_bounds_and_coverage() {
        let mut rng = Rng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.u64_below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn u64_below_is_roughly_uniform() {
        let mut rng = Rng::new(5);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.u64_below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 600, "counts={counts:?}");
        }
    }

    #[test]
    fn i64_range_inclusive() {
        let mut rng = Rng::new(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            let x = rng.i64_range(-3, 3);
            assert!((-3..=3).contains(&x));
            lo_seen |= x == -3;
            hi_seen |= x == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Rng::new(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }

    #[test]
    fn normal_respects_parameters() {
        let mut rng = Rng::new(17);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn lognormal_is_positive_with_right_median() {
        let mut rng = Rng::new(19);
        let n = 100_000;
        let mut xs: Vec<f64> = (0..n).map(|_| rng.lognormal(0.0, 0.25)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        assert!((median - 1.0).abs() < 0.02, "median={median}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(23);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = Rng::new(31);
        let mut b = a.fork();
        let overlap = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(overlap < 4);
    }
}
