//! Order-preserving parallel map over slices.
//!
//! The prediction pipeline has two embarrassingly parallel outer loops —
//! Monte-Carlo sample draws and per-query experiment runs — whose bodies
//! are pure functions of their input. [`parallel_map`] fans those out over
//! `std::thread::scope` when the `parallel` cargo feature is enabled and
//! degrades to a plain sequential map otherwise, so callers need no `cfg`
//! of their own and results are **identical** (same values, same order)
//! either way.
//!
//! Built on scoped threads rather than an external work-stealing runtime so
//! the workspace stays dependency-free; the unit of work here (executing a
//! plan over samples, predicting a query) is far coarser than a
//! work-stealing scheduler needs.

/// Maps `f` over `items`, preserving order. Runs on
/// `std::thread::available_parallelism` threads when the `parallel` feature
/// is on; sequentially otherwise. `f` must be pure with respect to ordering
/// — results are returned in input order regardless of scheduling.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    #[cfg(feature = "parallel")]
    {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZero::get)
            .unwrap_or(1)
            .min(items.len().max(1));
        parallel_map_with_threads(items, f, threads)
    }
    #[cfg(not(feature = "parallel"))]
    {
        items.iter().map(f).collect()
    }
}

/// [`parallel_map`] with an explicit worker count. Exposed so the threaded
/// path is exercisable (and testable) even on single-core machines, where
/// `available_parallelism` would otherwise always select the sequential
/// branch.
#[cfg(feature = "parallel")]
pub fn parallel_map_with_threads<T, R, F>(items: &[T], f: F, threads: usize) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    // Dynamic claiming of contiguous *blocks*: heterogeneous items still
    // balance (several blocks per thread), but results accumulate in
    // per-thread chunk buffers — no shared mutex on the result path, no
    // per-item synchronization. Each buffer entry is (block start, results
    // in item order), so stitching is a short sort over blocks, not items.
    let block = items.len().div_ceil(threads * 4).max(1);
    let n_blocks = items.len().div_ceil(block);
    let next = AtomicUsize::new(0);
    let mut chunks: Vec<(usize, Vec<R>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(n_blocks))
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= n_blocks {
                            break;
                        }
                        let start = b * block;
                        let end = (start + block).min(items.len());
                        local.push((start, items[start..end].iter().map(&f).collect()));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("no poisoned workers"))
            .collect()
    });

    chunks.sort_unstable_by_key(|&(start, _)| start);
    let out: Vec<R> = chunks.into_iter().flat_map(|(_, rs)| rs).collect();
    debug_assert_eq!(out.len(), items.len());
    out
}

/// True when the `parallel` feature is compiled in (for reporting).
pub fn parallel_enabled() -> bool {
    cfg!(feature = "parallel")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys = parallel_map(&xs, |&x| x * x);
        assert_eq!(ys.len(), 1000);
        for (i, y) in ys.iter().enumerate() {
            assert_eq!(*y, (i * i) as u64);
        }
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map(&none, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn matches_sequential_reference() {
        let xs: Vec<i64> = (0..257).map(|i| i * 3 - 100).collect();
        let seq: Vec<i64> = xs.iter().map(|&x| x.wrapping_mul(x) - 1).collect();
        assert_eq!(parallel_map(&xs, |&x| x.wrapping_mul(x) - 1), seq);
    }

    /// Forces the scoped-thread path even on single-core machines (where
    /// `parallel_map` itself would pick the sequential branch).
    #[cfg(feature = "parallel")]
    #[test]
    fn threaded_path_preserves_order() {
        let xs: Vec<u64> = (0..1001).collect();
        let seq: Vec<u64> = xs.iter().map(|&x| x * 7 + 1).collect();
        for threads in [2, 4, 16] {
            assert_eq!(
                parallel_map_with_threads(&xs, |&x| x * 7 + 1, threads),
                seq,
                "threads = {threads}"
            );
        }
    }
}
