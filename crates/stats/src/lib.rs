//! # uaq-stats
//!
//! Probability and statistics substrate for the `uaq` reproduction of
//! *Uncertainty Aware Query Execution Time Prediction* (Wu et al., 2014).
//!
//! Everything here is hand-rolled on purpose: the reproduction must be
//! dependency-light, deterministic, and each formula the paper relies on
//! (normal moment table, Lemma 4/8 variances, `2Φ(α) − 1`, NNLS fitting,
//! rank correlations, Zipf skew) is implemented and unit-tested against
//! reference values or Monte Carlo simulation.

pub mod correlation;
pub mod ecdf;
pub mod erf;
pub mod nnls;
pub mod normal;
pub mod par;
pub mod rng;
pub mod summary;
pub mod zipf;

pub use correlation::{pearson, spearman};
pub use ecdf::{dn, dn_at, dn_average, empirical_pr, model_pr, normalized_errors};
pub use erf::{erf, erfc, std_normal_cdf, std_normal_quantile};
pub use nnls::{nnls, Matrix, NnlsSolution};
pub use normal::{independent_product_mean_var, lemma4_var, lemma8_var, Normal};
pub use par::{parallel_enabled, parallel_map};
pub use rng::Rng;
pub use summary::{mean, relative_error, sample_variance, std_dev, Welford};
pub use zipf::Zipf;
