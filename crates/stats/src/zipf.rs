//! Zipf(ian) sampling, mirroring the skewed TPC-H generator the paper uses
//! (§6.1): rank `k` gets probability `∝ 1/k^z`; `z = 0` is uniform and the
//! paper's skewed databases use `z = 1`.

use crate::rng::Rng;

/// Precomputed Zipf CDF over ranks `0..n` (0-based for direct indexing).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    z: f64,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with exponent `z >= 0`.
    pub fn new(n: usize, z: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        assert!(z >= 0.0 && z.is_finite(), "invalid skew z={z}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-z);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating point drift at the top end.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Self { cdf, z }
    }

    pub fn domain_size(&self) -> usize {
        self.cdf.len()
    }

    pub fn z(&self) -> f64 {
        self.z
    }

    /// Probability of rank `k` (0-based).
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Samples a 0-based rank.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        // First index with cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        for zz in [0.0, 0.5, 1.0, 2.0] {
            let z = Zipf::new(100, zz);
            let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn z_one_ratios() {
        // For z=1 the pmf ratio between rank 1 and rank k is exactly k.
        let z = Zipf::new(50, 1.0);
        assert!((z.pmf(0) / z.pmf(9) - 10.0).abs() < 1e-9);
        assert!((z.pmf(0) / z.pmf(49) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_pmf() {
        let z = Zipf::new(20, 1.0);
        let mut rng = Rng::new(31337);
        let n = 200_000;
        let mut counts = [0u32; 20];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let expected = z.pmf(k) * n as f64;
            let got = count as f64;
            assert!(
                (got - expected).abs() < 5.0 * expected.sqrt().max(8.0),
                "rank {k}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn skew_concentrates_mass() {
        let uni = Zipf::new(1000, 0.0);
        let skew = Zipf::new(1000, 1.0);
        // Top 10 ranks hold much more mass under skew.
        let top10 = |d: &Zipf| (0..10).map(|k| d.pmf(k)).sum::<f64>();
        assert!(top10(&skew) > 5.0 * top10(&uni));
    }

    #[test]
    fn single_rank_domain() {
        let z = Zipf::new(1, 1.0);
        let mut rng = Rng::new(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.pmf(0), 1.0);
    }
}
