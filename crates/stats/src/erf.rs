//! Error function and friends, implemented via the regularized incomplete
//! gamma function (`erf(x) = P(1/2, x^2)` for `x >= 0`), which converges to
//! near machine precision. Needed for the standard normal CDF `Φ` used by the
//! paper's `Pr(α) = 2Φ(α) − 1` error-likelihood computation (§6.3).

const MAX_ITER: usize = 300;
const EPS: f64 = 3.0e-16;
const FPMIN: f64 = f64::MIN_POSITIVE / EPS;

/// `ln Γ(x)` for `x > 0` (Lanczos approximation, |error| < 2e-10 relative).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const COF: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_9e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for c in COF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Regularized lower incomplete gamma `P(a, x)` via series expansion
/// (converges quickly for `x < a + 1`).
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - gln).exp()
}

/// Regularized upper incomplete gamma `Q(a, x)` via continued fraction
/// (converges quickly for `x >= a + 1`).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - gln).exp() * h
}

/// Regularized lower incomplete gamma function `P(a, x)`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain: a={a}, x={x}");
    if x == 0.0 {
        0.0
    } else if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Error function `erf(x)`.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let p = gamma_p(0.5, x * x);
    if x >= 0.0 {
        p
    } else {
        -p
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        if x * x >= 1.5 {
            gamma_q_cf(0.5, x * x)
        } else {
            1.0 - gamma_p(0.5, x * x)
        }
    } else {
        2.0 - erfc(-x)
    }
}

/// Standard normal CDF `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Inverse of the standard normal CDF (quantile function).
///
/// Acklam's rational approximation refined with one Halley step against the
/// high-precision CDF above; absolute error well below 1e-12 in (1e-300, 1).
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "std_normal_quantile requires p in (0,1), got {p}"
    );
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun / mpmath.
        assert_close(erf(0.0), 0.0, 1e-15);
        assert_close(erf(0.5), 0.520_499_877_813_046_5, 1e-10);
        assert_close(erf(1.0), 0.842_700_792_949_714_9, 1e-10);
        assert_close(erf(2.0), 0.995_322_265_018_952_7, 1e-10);
        assert_close(erf(3.0), 0.999_977_909_503_001_4, 1e-10);
    }

    #[test]
    fn erf_is_odd() {
        for x in [0.1, 0.7, 1.3, 2.9] {
            assert_close(erf(-x), -erf(x), 1e-14);
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-2.5, -1.0, 0.0, 0.3, 1.7, 4.0] {
            assert_close(erfc(x), 1.0 - erf(x), 1e-12);
        }
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(5) from mpmath.
        assert_close(erfc(5.0), 1.537_459_794_428_035e-12, 1e-20);
    }

    #[test]
    fn cdf_reference_values() {
        assert_close(std_normal_cdf(0.0), 0.5, 1e-14);
        assert_close(std_normal_cdf(1.0), 0.841_344_746_068_542_9, 1e-10);
        assert_close(std_normal_cdf(-1.0), 0.158_655_253_931_457_05, 1e-10);
        assert_close(std_normal_cdf(1.959_963_984_540_054), 0.975, 1e-9);
        assert_close(std_normal_cdf(3.0), 0.998_650_101_968_369_9, 1e-10);
    }

    #[test]
    fn three_sigma_rule() {
        // Pr(X in [μ−3σ, μ+3σ]) ≈ 0.9973, the interval used for the fitting
        // grid in §4.2 of the paper.
        let p = std_normal_cdf(3.0) - std_normal_cdf(-3.0);
        assert_close(p, 0.997_300_203_936_74, 1e-9);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [
            1e-6,
            0.001,
            0.025,
            0.31,
            0.5,
            0.77,
            0.975,
            0.999,
            1.0 - 1e-6,
        ] {
            let x = std_normal_quantile(p);
            assert_close(std_normal_cdf(x), p, 1e-11);
        }
    }

    #[test]
    fn quantile_symmetry() {
        for p in [0.01, 0.2, 0.4] {
            assert_close(std_normal_quantile(p), -std_normal_quantile(1.0 - p), 1e-10);
        }
    }

    #[test]
    fn ln_gamma_reference() {
        assert_close(ln_gamma(1.0), 0.0, 1e-9);
        assert_close(ln_gamma(0.5), 0.572_364_942_924_700_1, 1e-9); // ln sqrt(pi)
        assert_close(ln_gamma(5.0), 24.0_f64.ln(), 1e-9);
    }

    #[test]
    fn gamma_p_half_is_erf() {
        for x in [0.2, 1.0, 2.3] {
            assert_close(gamma_p(0.5, x * x), erf(x), 1e-12);
        }
    }
}
