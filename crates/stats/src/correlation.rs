//! Pearson and Spearman correlation coefficients — the paper's two headline
//! metrics (`r_p`, Eq. 7, and `r_s`, its rank analogue; §6.3).

/// Pearson linear correlation coefficient `r_p` (Eq. 7 of the paper).
///
/// Returns 0 when either input has zero variance (a flat series carries no
/// linear association signal).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// Fractional ranks (1-based) with ties resolved by averaging — the standard
/// convention for Spearman's coefficient.
pub fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in rank input"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the average of ranks i+1..=j+1.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman's rank correlation coefficient `r_s`: Pearson correlation of the
/// average ranks. More robust to outliers than `r_p` (Fig. 3 discussion).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "spearman: length mismatch");
    pearson(&average_ranks(xs), &average_ranks(ys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn pearson_perfect_linear() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        let xs = [2.0, 2.0, 2.0];
        let ys = [1.0, 5.0, 9.0];
        assert_eq!(pearson(&xs, &ys), 0.0);
    }

    #[test]
    fn pearson_uncorrelated_near_zero() {
        let mut rng = Rng::new(44);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.f64()).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.f64()).collect();
        assert!(pearson(&xs, &ys).abs() < 0.02);
    }

    #[test]
    fn ranks_simple() {
        // Paper example: σ = (4, 7, 5) has ranks (1, 3, 2).
        assert_eq!(average_ranks(&[4.0, 7.0, 5.0]), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn ranks_with_ties_average() {
        assert_eq!(
            average_ranks(&[1.0, 2.0, 2.0, 3.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
        assert_eq!(average_ranks(&[5.0, 5.0, 5.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn spearman_perfect_monotone_nonlinear() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        // Pearson is below 1 for this convex relationship.
        assert!(pearson(&xs, &ys) < 0.999);
    }

    #[test]
    fn spearman_robust_to_outlier() {
        // Mirrors the paper's Fig. 3 robustness observation: one extreme
        // outlier distorts r_p far more than r_s.
        let mut xs: Vec<f64> = (1..=30).map(|i| i as f64).collect();
        let mut ys: Vec<f64> = xs.iter().map(|x| x * 2.0 + 1.0).collect();
        let rp_before = pearson(&xs, &ys);
        xs.push(31.0);
        ys.push(-1000.0);
        let rp_after = pearson(&xs, &ys);
        let rs_after = spearman(&xs, &ys);
        assert!(rp_before > 0.999);
        assert!(rp_after < 0.5, "rp_after={rp_after}");
        assert!(rs_after > 0.7, "rs_after={rs_after}");
    }

    #[test]
    fn correlation_invariant_to_affine_transform() {
        let xs = [1.0, 4.0, 2.0, 8.0, 5.0];
        let ys = [2.0, 3.0, 1.0, 9.0, 4.0];
        let scaled: Vec<f64> = xs.iter().map(|x| 3.0 * x + 7.0).collect();
        assert!((pearson(&xs, &ys) - pearson(&scaled, &ys)).abs() < 1e-12);
        assert!((spearman(&xs, &ys) - spearman(&scaled, &ys)).abs() < 1e-12);
    }

    #[test]
    fn coefficients_bounded() {
        let mut rng = Rng::new(123);
        for _ in 0..50 {
            let n = 3 + rng.usize_below(20);
            let xs: Vec<f64> = (0..n).map(|_| rng.f64() * 100.0).collect();
            let ys: Vec<f64> = (0..n).map(|_| rng.f64() * 100.0).collect();
            let rp = pearson(&xs, &ys);
            let rs = spearman(&xs, &ys);
            assert!((-1.0..=1.0).contains(&rp));
            assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&rs));
        }
    }
}
