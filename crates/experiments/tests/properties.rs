//! Property-based tests for the experiment metrics.

use proptest::prelude::*;
use uaq_experiments::metrics;
use uaq_experiments::runner::{CellOutcome, QueryRecord, SelRecord};

fn outcome(points: &[(f64, f64, f64)]) -> CellOutcome {
    CellOutcome {
        config_label: "prop".into(),
        records: points
            .iter()
            .enumerate()
            .map(|(i, &(mean, std, actual))| QueryRecord {
                name: format!("q{i}"),
                predicted_mean_ms: mean,
                predicted_std_ms: std,
                actual_ms: actual,
                full_pass_seconds: 1.0,
                sample_pass_seconds: 0.02,
                sels: vec![],
            })
            .collect(),
    }
}

fn point_strategy() -> impl Strategy<Value = (f64, f64, f64)> {
    (1.0..1000.0f64, 0.01..100.0f64, 1.0..1000.0f64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn correlations_are_bounded(points in prop::collection::vec(point_strategy(), 3..60)) {
        let o = outcome(&points);
        let (rs, rp) = metrics::correlation(&o);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rs));
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rp));
    }

    #[test]
    fn dn_is_a_probability_distance(points in prop::collection::vec(point_strategy(), 3..60)) {
        let o = outcome(&points);
        let d = metrics::distribution_distance(&o);
        prop_assert!((0.0..=1.0).contains(&d), "D_n = {d}");
    }

    #[test]
    fn empirical_pr_is_monotone_in_alpha(
        points in prop::collection::vec(point_strategy(), 3..40),
        a in 0.1..3.0f64,
        b in 0.1..3.0f64,
    ) {
        let o = outcome(&points);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(metrics::empirical_pr(&o, lo) <= metrics::empirical_pr(&o, hi) + 1e-12);
    }

    #[test]
    fn outlier_removal_reduces_count_by_one(points in prop::collection::vec(point_strategy(), 3..40)) {
        let o = outcome(&points);
        prop_assert_eq!(metrics::scatter_without_top_outlier(&o).len(), points.len() - 1);
    }

    #[test]
    fn sel_metrics_are_finite(
        raw in prop::collection::vec((0.0..1.0f64, 0.0..0.2f64, 0.0..1.0f64), 3..50),
    ) {
        let records: Vec<SelRecord> = raw
            .iter()
            .enumerate()
            .map(|(i, &(est, std, act))| SelRecord {
                node: i,
                estimated: est,
                estimated_std: std,
                actual: act,
            })
            .collect();
        let (rs, rp) = metrics::sel_error_correlation(&records);
        prop_assert!(rs.is_finite() && rp.is_finite());
        let (rs2, rp2) = metrics::sel_value_correlation(&records);
        prop_assert!(rs2.is_finite() && rp2.is_finite());
        let mre = metrics::mean_relative_sel_error(&records);
        prop_assert!(mre >= 0.0 && mre.is_finite());
        if let Some((a, b)) = metrics::sel_error_correlation_above(&records, 0.2) {
            prop_assert!(a.is_finite() && b.is_finite());
        }
    }
}
