//! Text renderers that regenerate every table and figure of the paper's
//! evaluation section (the binaries in `uaq-bench` are thin wrappers around
//! these). Figures are rendered as aligned data tables — same rows/series,
//! text instead of gnuplot.

use crate::config::{CellConfig, Machine, ABLATION_SAMPLING_RATIOS, MAIN_SAMPLING_RATIOS};
use crate::metrics;
use crate::runner::Lab;
use uaq_core::Variant;
use uaq_datagen::DbPreset;
use uaq_stats::ecdf::FIG5_ALPHAS;
use uaq_workloads::Benchmark;

/// Minimal fixed-width text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

fn fmt_rs_rp(c: (f64, f64)) -> String {
    format!("{:.4} ({:.4})", c.0, c.1)
}

/// Table 4: `r_s (r_p)` for every benchmark × database × machine × SR.
pub fn table4(lab: &mut Lab) -> String {
    let mut out = String::from(
        "Table 4: r_s (r_p) of the benchmark queries over different hardware and database settings\n\n",
    );
    for db in DbPreset::ALL {
        out.push_str(&format!("{}\n", db.label()));
        let mut t = TextTable::new(&[
            "SR",
            "MICRO/PC1",
            "MICRO/PC2",
            "SELJOIN/PC1",
            "SELJOIN/PC2",
            "TPCH/PC1",
            "TPCH/PC2",
        ]);
        for &sr in &MAIN_SAMPLING_RATIOS {
            let mut cells = vec![format!("{sr}")];
            for bench in Benchmark::ALL {
                for machine in Machine::ALL {
                    let outcome = lab.run_cell(&CellConfig::new(db, machine, bench, sr));
                    cells.push(fmt_rs_rp(metrics::correlation(&outcome)));
                }
            }
            t.row(cells);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Table 5: `D_n` for the same matrix.
pub fn table5(lab: &mut Lab) -> String {
    let mut out = String::from(
        "Table 5: D_n of the benchmark queries over different hardware and database settings\n\n",
    );
    for db in DbPreset::ALL {
        out.push_str(&format!("{}\n", db.label()));
        let mut t = TextTable::new(&[
            "SR",
            "MICRO/PC1",
            "MICRO/PC2",
            "SELJOIN/PC1",
            "SELJOIN/PC2",
            "TPCH/PC1",
            "TPCH/PC2",
        ]);
        for &sr in &MAIN_SAMPLING_RATIOS {
            let mut cells = vec![format!("{sr}")];
            for bench in Benchmark::ALL {
                for machine in Machine::ALL {
                    let outcome = lab.run_cell(&CellConfig::new(db, machine, bench, sr));
                    cells.push(format!("{:.4}", metrics::distribution_distance(&outcome)));
                }
            }
            t.row(cells);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Figure 2: `r_s` and `r_p` vs sampling ratio for the paper's three
/// showcased settings.
pub fn fig2(lab: &mut Lab) -> String {
    let panels = [
        (
            "(a) MICRO, Uniform 1GB, PC2",
            DbPreset::Uniform1G,
            Machine::Pc2,
            Benchmark::Micro,
        ),
        (
            "(b) SELJOIN, Uniform 1GB, PC1",
            DbPreset::Uniform1G,
            Machine::Pc1,
            Benchmark::SelJoin,
        ),
        (
            "(c) TPCH, Skewed 10GB, PC1",
            DbPreset::Skewed10G,
            Machine::Pc1,
            Benchmark::Tpch,
        ),
    ];
    let mut out = String::from("Figure 2: r_s and r_p vs sampling ratio\n\n");
    for (title, db, machine, bench) in panels {
        out.push_str(&format!("{title}\n"));
        let mut t = TextTable::new(&["SR", "r_s", "r_p"]);
        for &sr in &MAIN_SAMPLING_RATIOS {
            let outcome = lab.run_cell(&CellConfig::new(db, machine, bench, sr));
            let (rs, rp) = metrics::correlation(&outcome);
            t.row(vec![
                format!("{sr}"),
                format!("{rs:.4}"),
                format!("{rp:.4}"),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

fn render_scatter(title: &str, points: &[(f64, f64)]) -> String {
    let (rs, rp) = metrics::scatter_correlation(points);
    let mut t = TextTable::new(&["est. std dev (ms)", "actual error (ms)"]);
    for &(s, e) in points {
        t.row(vec![format!("{s:.3}"), format!("{e:.3}")]);
    }
    format!("{title}  [r_s={rs:.4}, r_p={rp:.4}]\n{}\n", t.render())
}

/// Figure 3: scatter plots showing the robustness of `r_s` vs `r_p` to
/// outliers (cases (1), (1) minus its biggest outlier, and (2)).
pub fn fig3(lab: &mut Lab) -> String {
    let case1 = lab.run_cell(&CellConfig::new(
        DbPreset::Uniform1G,
        Machine::Pc2,
        Benchmark::Micro,
        0.01,
    ));
    let case2 = lab.run_cell(&CellConfig::new(
        DbPreset::Uniform1G,
        Machine::Pc1,
        Benchmark::SelJoin,
        0.05,
    ));
    let mut out = String::from("Figure 3: robustness of r_s and r_p with respect to outliers\n\n");
    out.push_str(&render_scatter(
        "(a) Case (1): MICRO, U-1G, PC2, SR=0.01",
        &metrics::scatter(&case1),
    ));
    out.push_str(&render_scatter(
        "(b) Case (1) after one outlier is removed",
        &metrics::scatter_without_top_outlier(&case1),
    ));
    out.push_str(&render_scatter(
        "(c) Case (2): SELJOIN, U-1G, PC1, SR=0.05",
        &metrics::scatter(&case2),
    ));
    out
}

/// Figure 4: `D_n` vs sampling ratio over the uniform 10GB database.
pub fn fig4(lab: &mut Lab) -> String {
    let mut out = String::from("Figure 4: D_n over uniform TPC-H 10GB databases\n\n");
    for bench in Benchmark::ALL {
        out.push_str(&format!(
            "({}) {}\n",
            bench.label().to_lowercase(),
            bench.label()
        ));
        let mut t = TextTable::new(&["SR", "PC1", "PC2"]);
        for &sr in &MAIN_SAMPLING_RATIOS {
            let d1 = metrics::distribution_distance(&lab.run_cell(&CellConfig::new(
                DbPreset::Uniform10G,
                Machine::Pc1,
                bench,
                sr,
            )));
            let d2 = metrics::distribution_distance(&lab.run_cell(&CellConfig::new(
                DbPreset::Uniform10G,
                Machine::Pc2,
                bench,
                sr,
            )));
            t.row(vec![
                format!("{sr}"),
                format!("{d1:.4}"),
                format!("{d2:.4}"),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Figure 5: predicted `Pr(α)` vs empirical `Pr_n(α)` curves
/// (uniform 10GB, PC2, SR = 0.05).
pub fn fig5(lab: &mut Lab) -> String {
    let mut out =
        String::from("Figure 5: proximity of Pr_n(α) and Pr(α) (U-10G, PC2, SR=0.05)\n\n");
    for bench in Benchmark::ALL {
        let outcome = lab.run_cell(&CellConfig::new(
            DbPreset::Uniform10G,
            Machine::Pc2,
            bench,
            0.05,
        ));
        let dn = metrics::distribution_distance(&outcome);
        out.push_str(&format!("{} (D_n = {dn:.4})\n", bench.label()));
        let mut t = TextTable::new(&["alpha", "Pr_n(alpha)", "Pr(alpha)"]);
        for &a in &FIG5_ALPHAS {
            t.row(vec![
                format!("{a}"),
                format!("{:.4}", metrics::empirical_pr(&outcome, a)),
                format!("{:.4}", uaq_stats::model_pr(a)),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Figure 6: the remaining two correlation case studies.
pub fn fig6(lab: &mut Lab) -> String {
    let case3 = lab.run_cell(&CellConfig::new(
        DbPreset::Skewed10G,
        Machine::Pc1,
        Benchmark::Tpch,
        0.05,
    ));
    let case4 = lab.run_cell(&CellConfig::new(
        DbPreset::Uniform1G,
        Machine::Pc1,
        Benchmark::Tpch,
        0.01,
    ));
    let mut out = String::from("Figure 6: more case studies on correlations\n\n");
    out.push_str(&render_scatter(
        "(a) Case (3): TPCH, S-10G, PC1, SR=0.05",
        &metrics::scatter(&case3),
    ));
    out.push_str(&render_scatter(
        "(b) Case (4): TPCH, U-1G, PC1, SR=0.01",
        &metrics::scatter(&case4),
    ));
    out
}

fn ablation_panel(lab: &mut Lab, title: &str, db: DbPreset, machine: Machine) -> String {
    let mut out = format!("{title}\n");
    let mut t = TextTable::new(&["SR", "All", "No Var[c]", "No Var[X]", "No Cov"]);
    for &sr in &ABLATION_SAMPLING_RATIOS {
        let mut cells = vec![format!("{sr}")];
        for variant in Variant::ALL_VARIANTS {
            let outcome = lab
                .run_cell(&CellConfig::new(db, machine, Benchmark::Tpch, sr).with_variant(variant));
            let (rs, _) = metrics::correlation(&outcome);
            cells.push(format!("{rs:.4}"));
        }
        t.row(cells);
    }
    out.push_str(&t.render());
    out.push('\n');
    out
}

/// Figure 8: the four predictor variants on uniform databases (r_s, TPCH).
pub fn fig8(lab: &mut Lab) -> String {
    let mut out = String::from("Figure 8: comparison of four alternatives in terms of r_s\n\n");
    out.push_str(&ablation_panel(
        lab,
        "(a) Uniform 1GB database, PC2",
        DbPreset::Uniform1G,
        Machine::Pc2,
    ));
    out.push_str(&ablation_panel(
        lab,
        "(b) Uniform 10GB database, PC1",
        DbPreset::Uniform10G,
        Machine::Pc1,
    ));
    out
}

/// Figure 10: the four predictor variants on skewed databases.
pub fn fig10(lab: &mut Lab) -> String {
    let mut out =
        String::from("Figure 10: comparison of four alternatives on skewed databases\n\n");
    out.push_str(&ablation_panel(
        lab,
        "(a) Skewed 1GB database, PC1",
        DbPreset::Skewed1G,
        Machine::Pc1,
    ));
    out.push_str(&ablation_panel(
        lab,
        "(b) Skewed 10GB database, PC2",
        DbPreset::Skewed10G,
        Machine::Pc2,
    ));
    out
}

/// Figure 9: relative sampling overhead of the TPCH queries (PC1).
pub fn fig9(lab: &mut Lab) -> String {
    let mut out = String::from("Figure 9: relative overhead of TPCH queries on PC1\n\n");
    let mut t = TextTable::new(&["SR", "TPCH-1G", "TPCH-1G-Skew", "TPCH-10G", "TPCH-10G-Skew"]);
    for &sr in &MAIN_SAMPLING_RATIOS {
        let mut cells = vec![format!("{sr}")];
        for db in [
            DbPreset::Uniform1G,
            DbPreset::Skewed1G,
            DbPreset::Uniform10G,
            DbPreset::Skewed10G,
        ] {
            let outcome = lab.run_cell(&CellConfig::new(db, Machine::Pc1, Benchmark::Tpch, sr));
            cells.push(format!("{:.4}", outcome.mean_relative_overhead()));
        }
        t.row(cells);
    }
    out.push_str(&t.render());
    out
}

/// Figure 11: relative sampling overhead, all benchmarks × machines.
pub fn fig11(lab: &mut Lab) -> String {
    let mut out = String::from("Figure 11: relative overhead of benchmark queries\n\n");
    for bench in Benchmark::ALL {
        for machine in Machine::ALL {
            out.push_str(&format!("({}, {})\n", bench.label(), machine.label()));
            let mut t =
                TextTable::new(&["SR", "TPCH-1G", "TPCH-1G-Skew", "TPCH-10G", "TPCH-10G-Skew"]);
            for &sr in &MAIN_SAMPLING_RATIOS {
                let mut cells = vec![format!("{sr}")];
                for db in [
                    DbPreset::Uniform1G,
                    DbPreset::Skewed1G,
                    DbPreset::Uniform10G,
                    DbPreset::Skewed10G,
                ] {
                    let outcome = lab.run_cell(&CellConfig::new(db, machine, bench, sr));
                    cells.push(format!("{:.4}", outcome.mean_relative_overhead()));
                }
                t.row(cells);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
    }
    out
}

/// Figure 12: estimated vs actual selectivities (skewed 1GB, PC1, SR=0.05).
pub fn fig12(lab: &mut Lab) -> String {
    let mut out =
        String::from("Figure 12: estimated vs actual selectivities (S-1G, PC1, SR=0.05)\n\n");
    for bench in Benchmark::ALL {
        let outcome = lab.run_cell(&CellConfig::new(
            DbPreset::Skewed1G,
            Machine::Pc1,
            bench,
            0.05,
        ));
        let records = metrics::all_sel_records(&outcome);
        let (rs, rp) = metrics::sel_value_correlation(&records);
        out.push_str(&format!(
            "({}) {} — {} operators, r_s={rs:.4}, r_p={rp:.4}\n",
            bench.label().to_lowercase(),
            bench.label(),
            records.len()
        ));
        let mut t = TextTable::new(&["estimated", "actual"]);
        for s in records.iter().take(60) {
            t.row(vec![
                format!("{:.5}", s.estimated),
                format!("{:.5}", s.actual),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// The sampling ratios of Tables 6–9 (a prefix of the paper's sweep).
pub const SEL_TABLE_RATIOS: [f64; 4] = [0.01, 0.05, 0.1, 0.2];

fn sel_table(
    lab: &mut Lab,
    title: &str,
    f: impl Fn(&[crate::runner::SelRecord]) -> String,
) -> String {
    let mut out =
        format!("{title}\n(selectivity estimation is machine-independent; PC1 shown)\n\n");
    for db in DbPreset::ALL {
        out.push_str(&format!("{}\n", db.label()));
        let mut t = TextTable::new(&["SR", "MICRO", "SELJOIN", "TPCH"]);
        for &sr in &SEL_TABLE_RATIOS {
            let mut cells = vec![format!("{sr}")];
            for bench in Benchmark::ALL {
                let outcome = lab.run_cell(&CellConfig::new(db, Machine::Pc1, bench, sr));
                let records = metrics::all_sel_records(&outcome);
                cells.push(f(&records));
            }
            t.row(cells);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Table 6: correlation between estimated and actual errors in selectivity
/// estimates.
pub fn table6(lab: &mut Lab) -> String {
    sel_table(
        lab,
        "Table 6: r_s (r_p) between the estimated and actual errors in selectivity estimates",
        |records| fmt_rs_rp(metrics::sel_error_correlation(records)),
    )
}

/// Table 7: correlation between estimated and actual selectivities.
pub fn table7(lab: &mut Lab) -> String {
    sel_table(
        lab,
        "Table 7: r_s (r_p) between the estimated and actual selectivities",
        |records| fmt_rs_rp(metrics::sel_value_correlation(records)),
    )
}

/// Table 8: relative errors in the selectivity estimates, shown as
/// `mean [median]` — the median is robust to the sub-resolution operators
/// that dominate the mean at tiny sampling ratios (see
/// [`metrics::median_relative_sel_error`]).
pub fn table8(lab: &mut Lab) -> String {
    sel_table(
        lab,
        "Table 8: relative errors in the selectivity estimates, mean [median]",
        |records| {
            format!(
                "{:.4} [{:.4}]",
                metrics::mean_relative_sel_error(records),
                metrics::median_relative_sel_error(records)
            )
        },
    )
}

/// Table 9: selectivity-error correlations restricted to relative errors
/// above 0.2.
pub fn table9(lab: &mut Lab) -> String {
    sel_table(
        lab,
        "Table 9: r_s (r_p) of selectivity estimates with relative errors above 0.2",
        |records| match metrics::sel_error_correlation_above(records, 0.2) {
            Some(c) => fmt_rs_rp(c),
            None => "N/A (N/A)".to_string(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_alignment() {
        let mut t = TextTable::new(&["a", "long-header", "c"]);
        t.row(vec!["12345".into(), "x".into(), "y".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[2].starts_with("12345"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn text_table_rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fig2_renders_three_panels() {
        // Smoke test on the smallest setting only: patch the panels through
        // a tiny lab. This is slow-ish but single-cell.
        let mut lab = Lab::new(7);
        let outcome = lab.run_cell(&CellConfig::new(
            DbPreset::Uniform1G,
            Machine::Pc2,
            Benchmark::Micro,
            0.05,
        ));
        let sc = metrics::scatter(&outcome);
        let rendered = render_scatter("test", &sc);
        assert!(rendered.contains("r_s="));
        // Title + header + separator + one line per point + trailing blank.
        assert_eq!(rendered.lines().count(), sc.len() + 4);
    }
}
