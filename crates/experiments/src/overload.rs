//! Overload scenario: what should a saturated queue *drop*?
//!
//! The deadline scenario asks which arrivals to admit; this one asks the
//! harder operational question a provider faces past saturation, where
//! admission control alone cannot save the SLO: the run queue is bounded,
//! something must be shed — which request? Two orders compete at the same
//! queue capacity (the same shed budget):
//!
//! * **fifo-shed** ([`ShedOrder::Tail`]): classic tail drop — the arrival
//!   that finds the queue full is turned away. What any bounded queue
//!   does with no prediction at all.
//! * **variance-shed** ([`ShedOrder::HighestPriority`]): evict the queued
//!   request with the highest predicted *relative* variance `σ/μ` — the
//!   paper's uncertainty estimate used as an operational signal. Among
//!   requests that cannot all be served, the ones whose runtime the
//!   predictor is least sure about are the worst SLO bets per slot of
//!   capacity they hold.
//!
//! Both orders shed comparably many jobs (the queue bound is what sheds;
//! the order only picks victims), so any violation-rate gap between them
//! is purely the *choice* of victim — exactly the marginal value of the
//! predicted variance, isolated from the admission policy. The scenario
//! reports the pair under admit-all (no admission filter: the pure
//! shedding effect) and under the θ-confidence policy (shedding composes
//! with uncertainty-aware admission), plus the unbounded admit-all
//! baseline showing the violation catastrophe a bounded queue prevents.
//!
//! Deterministic: one arrival stream (same seeding discipline as the
//! deadline scenario) replayed verbatim under every row.

use crate::deadline::{
    calibrate_stream, fmt_rate, generate_arrivals, percentile, prepare, Arrival, DeadlineConfig,
    PooledQuery,
};
use crate::sim::{simulate_shedding, Consult, JobFate, RetryConfig, ShedConfig, ShedOrder, SimJob};
use uaq_service::{shed_priority, weighted_shed_priority, AdmissionPolicy, Decision};
use uaq_telemetry::ShapeCalibration;

/// Scenario knobs: the deadline scenario's workload machinery pushed past
/// saturation, plus the queue bound.
#[derive(Debug, Clone, Copy)]
pub struct OverloadConfig {
    /// Workload, seeding, θ, servers — reused wholesale. The default
    /// overrides utilization to 1.5: sustained overload, where a FIFO
    /// queue grows without bound and shedding is not optional.
    pub base: DeadlineConfig,
    /// Ready-queue capacity for the bounded rows.
    pub queue_capacity: usize,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        Self {
            base: DeadlineConfig {
                utilization: 1.5,
                ..Default::default()
            },
            queue_capacity: 4,
        }
    }
}

/// One row of the overload table.
#[derive(Debug, Clone)]
pub struct OverloadOutcome {
    pub label: String,
    /// Queries that ran (throughput under overload).
    pub admitted: usize,
    /// Load-shed at the full queue.
    pub shed: usize,
    /// Turned away by the admission policy (arrival-time rejections plus
    /// defer→reject outcomes).
    pub rejected: usize,
    /// Admitted queries that finished past their deadline.
    pub violations: usize,
    pub p50_sojourn_ms: f64,
    pub p95_sojourn_ms: f64,
    /// Per-tenant shed counts (tenant id → sheds) for the weighted-fair
    /// rows; empty when the row runs without tenant classes. Invariant:
    /// the counts sum to `shed`.
    pub shed_by_tenant: Vec<(u32, usize)>,
}

impl OverloadOutcome {
    /// SLO violation rate among admitted queries (`NaN` if none ran).
    pub fn violation_rate(&self) -> f64 {
        if self.admitted == 0 {
            f64::NAN
        } else {
            self.violations as f64 / self.admitted as f64
        }
    }
}

/// The scenario's full result.
#[derive(Debug, Clone)]
pub struct OverloadReport {
    pub arrivals: usize,
    pub servers: usize,
    pub utilization: f64,
    pub queue_capacity: usize,
    /// Row order: admit-all {unbounded, fifo-shed, variance-shed}, then
    /// uncertainty {fifo-shed, variance-shed}.
    pub outcomes: Vec<OverloadOutcome>,
    /// Per-shape calibration of the stream's predicted distributions
    /// (same policy-independent digest as the deadline scenario's).
    pub calibration: Vec<ShapeCalibration>,
}

impl OverloadReport {
    pub fn outcome(&self, label: &str) -> Option<&OverloadOutcome> {
        self.outcomes.iter().find(|o| o.label == label)
    }

    /// Text rendering in the style of the paper-table renderers.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Overload shedding: {} arrivals, {} server(s), ρ = {:.2}, queue capacity {}",
            self.arrivals, self.servers, self.utilization, self.queue_capacity
        );
        let _ = writeln!(
            out,
            "{:<34} {:>6} {:>5} {:>7} {:>5} {:>9} {:>9} {:>9}",
            "policy / shed order",
            "admit",
            "shed",
            "reject",
            "viol",
            "viol rate",
            "p50 ms",
            "p95 ms"
        );
        for o in &self.outcomes {
            let _ = writeln!(
                out,
                "{:<34} {:>6} {:>5} {:>7} {:>5} {:>9} {:>9.1} {:>9.1}",
                o.label,
                o.admitted,
                o.shed,
                o.rejected,
                o.violations,
                fmt_rate(o.violation_rate()),
                o.p50_sojourn_ms,
                o.p95_sojourn_ms,
            );
            for (tenant, shed) in &o.shed_by_tenant {
                let _ = writeln!(out, "{:<34} tenant {tenant}: {shed} shed", "");
            }
        }
        if !self.calibration.is_empty() {
            let _ = writeln!(
                out,
                "calibration (predicted distribution vs simulated actual):"
            );
            out.push_str(&ShapeCalibration::render_table(&self.calibration));
        }
        out
    }
}

/// Replays the stream under one (admission policy, shed config) pair.
/// `tenants`, when present, maps each arrival to its tenant id so the
/// outcome carries the per-tenant shed breakdown.
#[allow(clippy::too_many_arguments)]
fn replay(
    label: &str,
    policy: Option<AdmissionPolicy>,
    shed: ShedConfig,
    arrivals: &[Arrival],
    pool: &[PooledQuery],
    priority: &[f64],
    servers: usize,
    retry: RetryConfig,
    tenants: Option<&[u32]>,
) -> OverloadOutcome {
    let jobs: Vec<SimJob> = arrivals
        .iter()
        .map(|a| SimJob {
            arrive_ms: a.at_ms,
            slack_ms: a.slack_ms,
            actual_ms: a.actual_ms,
        })
        .collect();
    let result = simulate_shedding(
        &jobs,
        servers,
        retry,
        shed,
        priority,
        |i, budget, consult| {
            let Some(p) = &policy else {
                return Decision::Admit;
            };
            let prediction = pool[arrivals[i].query]
                .prediction
                .as_ref()
                .expect("arrived ⇒ predicted");
            match consult {
                Consult::Arrival { wait_ms } => {
                    p.decide_queued(prediction, budget + wait_ms, wait_ms).0
                }
                Consult::Retry => p.decide(prediction, Some(budget)).0,
            }
        },
    );

    let mut outcome = OverloadOutcome {
        label: label.to_owned(),
        admitted: 0,
        shed: 0,
        rejected: 0,
        violations: 0,
        p50_sojourn_ms: f64::NAN,
        p95_sojourn_ms: f64::NAN,
        shed_by_tenant: Vec::new(),
    };
    let mut sojourns = Vec::new();
    let mut shed_by_tenant = std::collections::BTreeMap::new();
    for (i, fate) in result.fates.iter().enumerate() {
        match *fate {
            JobFate::Admitted {
                sojourn_ms,
                violated,
                ..
            } => {
                outcome.admitted += 1;
                sojourns.push(sojourn_ms);
                if violated {
                    outcome.violations += 1;
                }
            }
            JobFate::Rejected { .. } | JobFate::Dropped => outcome.rejected += 1,
            JobFate::Shed => {
                outcome.shed += 1;
                if let Some(tenants) = tenants {
                    *shed_by_tenant.entry(tenants[i]).or_insert(0usize) += 1;
                }
            }
        }
    }
    outcome.shed_by_tenant = shed_by_tenant.into_iter().collect();
    sojourns.sort_by(|a, b| a.total_cmp(b));
    outcome.p50_sojourn_ms = percentile(&sojourns, 0.50);
    outcome.p95_sojourn_ms = percentile(&sojourns, 0.95);
    outcome
}

/// Runs the scenario. Deterministic for a given config.
pub fn run_overload_scenario(config: &OverloadConfig) -> OverloadReport {
    let mut prepared = prepare(&config.base);
    let arrivals = generate_arrivals(&mut prepared, &config.base);
    // Per-job shed priority: predicted relative variance σ/μ of the
    // arrival's query — the number the service's bounded queue uses.
    let priority: Vec<f64> = arrivals
        .iter()
        .map(|a| {
            shed_priority(
                prepared.pool[a.query]
                    .prediction
                    .as_ref()
                    .expect("arrived ⇒ predicted"),
            )
        })
        .collect();

    // Weighted-fair variant: every third arrival belongs to a quarter-
    // weight tenant class (a best-effort contract tier); its weighted
    // priority is 4× the anonymous tenant's at equal uncertainty, so the
    // shed pain concentrates there by design.
    let tenants: Vec<u32> = (0..arrivals.len() as u32)
        .map(|i| u32::from(i % 3 == 0))
        .collect();
    const LIGHT_WEIGHT: f64 = 0.25;
    let weighted: Vec<f64> = arrivals
        .iter()
        .zip(&tenants)
        .map(|(a, &tenant)| {
            let prediction = prepared.pool[a.query]
                .prediction
                .as_ref()
                .expect("arrived ⇒ predicted");
            let weight = if tenant == 1 { LIGHT_WEIGHT } else { 1.0 };
            weighted_shed_priority(prediction, weight)
        })
        .collect();

    let theta_label = format!("uncertainty (θ={})", config.base.theta);
    let theta = AdmissionPolicy::uncertainty_aware(config.base.theta);
    let fifo = ShedConfig::bounded(config.queue_capacity, ShedOrder::Tail);
    let variance = ShedConfig::bounded(config.queue_capacity, ShedOrder::HighestPriority);
    type Row<'a> = (
        String,
        Option<AdmissionPolicy>,
        ShedConfig,
        &'a [f64],
        Option<&'a [u32]>,
    );
    let rows: Vec<Row> = vec![
        (
            "admit-all / unbounded".into(),
            None,
            ShedConfig::unbounded(),
            &priority[..],
            None,
        ),
        ("admit-all / fifo-shed".into(), None, fifo, &priority, None),
        (
            "admit-all / variance-shed".into(),
            None,
            variance,
            &priority,
            None,
        ),
        (
            "admit-all / weighted-variance-shed".into(),
            None,
            variance,
            &weighted,
            Some(&tenants),
        ),
        (
            format!("{theta_label} / fifo-shed"),
            Some(theta),
            fifo,
            &priority,
            None,
        ),
        (
            format!("{theta_label} / variance-shed"),
            Some(theta),
            variance,
            &priority,
            None,
        ),
    ];

    let outcomes = rows
        .into_iter()
        .map(|(label, policy, shed, priority, tenants)| {
            replay(
                &label,
                policy,
                shed,
                &arrivals,
                &prepared.pool,
                priority,
                config.base.servers,
                config.base.retry,
                tenants,
            )
        })
        .collect();

    OverloadReport {
        arrivals: config.base.arrivals,
        servers: config.base.servers,
        utilization: config.base.utilization,
        queue_capacity: config.queue_capacity,
        outcomes,
        calibration: calibrate_stream(&arrivals, &prepared.pool).report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> OverloadConfig {
        OverloadConfig {
            base: DeadlineConfig {
                arrivals: 250,
                workers: 3,
                utilization: 1.5,
                ..Default::default()
            },
            queue_capacity: 4,
        }
    }

    #[test]
    fn variance_shedding_beats_fifo_shedding_at_the_same_capacity() {
        let report = run_overload_scenario(&small_config());
        let fifo = report.outcome("admit-all / fifo-shed").expect("row");
        let var = report.outcome("admit-all / variance-shed").expect("row");
        // Admit-all pair: no admission filter, so the only difference is
        // the victim choice — the isolated value of predicted variance.
        assert!(fifo.shed > 0, "overload must actually shed: {fifo:?}");
        assert!(var.shed > 0, "overload must actually shed: {var:?}");
        assert!(
            var.violation_rate() < fifo.violation_rate(),
            "shedding the most uncertain work must beat blind tail drop: \
             variance {:.3} vs fifo {:.3}",
            var.violation_rate(),
            fifo.violation_rate()
        );
        // Same shed budget: the bound sheds, the order only picks victims.
        let total = |o: &OverloadOutcome| o.admitted + o.shed + o.rejected;
        assert_eq!(total(fifo), report.arrivals);
        assert_eq!(total(var), report.arrivals);
    }

    #[test]
    fn bounded_queue_contains_the_unbounded_violation_catastrophe() {
        let report = run_overload_scenario(&small_config());
        let unbounded = report.outcome("admit-all / unbounded").expect("row");
        let var = report.outcome("admit-all / variance-shed").expect("row");
        assert_eq!(unbounded.shed, 0);
        assert!(
            var.violation_rate() < unbounded.violation_rate(),
            "a bounded queue must shed its way to fewer violations: \
             bounded {:.3} vs unbounded {:.3}",
            var.violation_rate(),
            unbounded.violation_rate()
        );
        assert!(
            var.p95_sojourn_ms < unbounded.p95_sojourn_ms,
            "shedding caps the queueing delay"
        );
    }

    #[test]
    fn shedding_composes_with_uncertainty_aware_admission() {
        let config = small_config();
        let report = run_overload_scenario(&config);
        let label = format!("uncertainty (θ={})", config.base.theta);
        let fifo = report
            .outcome(&format!("{label} / fifo-shed"))
            .expect("row");
        let var = report
            .outcome(&format!("{label} / variance-shed"))
            .expect("row");
        // The admission policy already filters the worst bets, so the
        // shedder has less to gain — but it must never do worse.
        assert!(
            var.violation_rate() <= fifo.violation_rate(),
            "variance {:.3} vs fifo {:.3}",
            var.violation_rate(),
            fifo.violation_rate()
        );
        for o in [fifo, var] {
            assert_eq!(o.admitted + o.shed + o.rejected, report.arrivals);
        }
    }

    #[test]
    fn weighted_shedding_concentrates_pain_on_the_light_tenant() {
        let report = run_overload_scenario(&small_config());
        let weighted = report
            .outcome("admit-all / weighted-variance-shed")
            .expect("row");
        assert!(weighted.shed > 0, "overload must shed: {weighted:?}");
        let total: usize = weighted.shed_by_tenant.iter().map(|&(_, n)| n).sum();
        assert_eq!(
            total, weighted.shed,
            "per-tenant sheds must sum to the total: {weighted:?}"
        );
        // The quarter-weight tenant sends a third of the traffic but its
        // 4× weighted priority draws a disproportionate shed share.
        let light = weighted
            .shed_by_tenant
            .iter()
            .find(|&&(t, _)| t == 1)
            .map(|&(_, n)| n)
            .unwrap_or(0);
        assert!(
            (light as f64) / (total as f64) > 1.0 / 3.0,
            "light tenant must absorb more than its traffic share: \
             {light}/{total} sheds ({:?})",
            weighted.shed_by_tenant
        );
        // The unweighted rows carry no tenant breakdown.
        let plain = report.outcome("admit-all / variance-shed").expect("row");
        assert!(plain.shed_by_tenant.is_empty());
    }

    #[test]
    fn scenario_is_deterministic() {
        let config = small_config();
        let a = run_overload_scenario(&config);
        let b = run_overload_scenario(&config);
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.admitted, y.admitted);
            assert_eq!(x.shed, y.shed);
            assert_eq!(x.rejected, y.rejected);
            assert_eq!(x.violations, y.violations);
            assert_eq!(x.p95_sojourn_ms.to_bits(), y.p95_sojourn_ms.to_bits());
        }
    }

    #[test]
    fn report_renders_every_row() {
        let report = run_overload_scenario(&small_config());
        let text = report.render();
        for label in [
            "admit-all / unbounded",
            "admit-all / fifo-shed",
            "admit-all / variance-shed",
            "uncertainty",
        ] {
            assert!(text.contains(label), "missing {label} in:\n{text}");
        }
    }
}
