//! # uaq-experiments
//!
//! End-to-end experiment harness reproducing §6 of the paper: a caching
//! [`Lab`](runner::Lab) that runs (database × machine × benchmark × sampling
//! ratio × variant) cells, the metrics of §6.3 (`r_s`/`r_p`, `D_n`,
//! selectivity-error statistics), and text renderers for every table and
//! figure of the evaluation.

pub mod config;
pub mod deadline;
pub mod metrics;
pub mod overload;
pub mod report;
pub mod runner;
pub mod sim;

pub use config::{
    default_instances, CellConfig, Machine, ABLATION_SAMPLING_RATIOS, MAIN_SAMPLING_RATIOS,
};
pub use deadline::{
    render_utilization_sweep, run_deadline_scenario, run_utilization_sweep, ArrivalProcess,
    DeadlineConfig, DeadlineReport, PolicyOutcome,
};
pub use overload::{run_overload_scenario, OverloadConfig, OverloadOutcome, OverloadReport};
pub use runner::{CellOutcome, Lab, QueryRecord, SelRecord};
pub use sim::{
    simulate, simulate_shedding, Consult, JobFate, RetryConfig, ShedConfig, ShedOrder, SimJob,
    SimResult,
};
