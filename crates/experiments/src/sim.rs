//! A small discrete-event scheduler for the deadline-admission scenario.
//!
//! PR 4's scenario replayed arrivals through an inline single-server
//! accumulator in which `Defer` was a *terminal* verdict: the query was
//! silently dropped, which misstates the very trade-off the defer band
//! exists to make (latency for throughput). This module replaces it with
//! an event-driven simulation:
//!
//! * an event heap of **arrivals** and **completions** over `servers ≥ 1`
//!   FIFO servers;
//! * admitted jobs queue FIFO and run to completion (`actual_ms`);
//! * a `Defer` verdict **parks the job in a retry queue**. Whenever a
//!   server frees up (a completion event), the freed slot is offered to
//!   the retry queue first: each parked job is re-decided with its
//!   *recomputed* remaining budget `slack − elapsed wait`. A retried job
//!   that admits starts immediately on the freed server — it never
//!   re-joins the back of the queue, which is exactly why deferring can
//!   pay: the backlog a job saw at arrival (and was quoted in its budget)
//!   may drain before its slack does.
//! * re-decisions are bounded: after `max_retries` consecutive `Defer`
//!   outcomes the job is finally rejected, and jobs still parked when the
//!   stream drains are rejected too — **no job leaves the system without
//!   a verdict** (unless retries are disabled, which reproduces the old
//!   terminal-defer semantics as `JobFate::Dropped`).
//!
//! The simulation is deterministic: events are ordered by
//! (`f64::total_cmp` on time, then creation sequence), all state updates
//! are sequential, and the decision function is called in a fixed order —
//! two runs over equal inputs produce bit-identical outcomes.

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};
use uaq_service::Decision;

/// One job offered to the scheduler. Jobs must be sorted by `arrive_ms`.
#[derive(Debug, Clone, Copy)]
pub struct SimJob {
    pub arrive_ms: f64,
    /// Deadline slack: the job's deadline is `arrive_ms + slack_ms`.
    pub slack_ms: f64,
    /// Service duration if the job runs.
    pub actual_ms: f64,
}

/// Retry behaviour for deferred jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Maximum number of `Defer` re-decisions before final rejection.
    /// `0` makes `Defer` terminal: the job is dropped without a verdict
    /// (the pre-retry behaviour, kept for A/B comparison).
    pub max_retries: usize,
}

impl RetryConfig {
    /// `Defer` is terminal (the job is dropped) — the old semantics.
    pub fn terminal() -> Self {
        Self { max_retries: 0 }
    }

    /// Deferred jobs are re-decided up to `max_retries` times.
    pub fn bounded(max_retries: usize) -> Self {
        Self { max_retries }
    }

    pub fn enabled(&self) -> bool {
        self.max_retries > 0
    }
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self::bounded(3)
    }
}

/// What finally happened to one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobFate {
    /// The job ran. `converted` marks a defer→admit conversion via the
    /// retry queue; `sojourn_ms` is finish − arrival (wait + service).
    Admitted {
        converted: bool,
        wait_ms: f64,
        sojourn_ms: f64,
        violated: bool,
    },
    /// The job was turned away. `converted` marks a defer→reject outcome
    /// (re-decided to reject, retries exhausted, or parked at drain).
    Rejected { converted: bool },
    /// Terminal defer with retries disabled: dropped without a verdict.
    Dropped,
    /// Admitted past a full bounded queue: load-shed instead of queued
    /// (either this job or, under priority shedding, in place of a
    /// higher-priority victim that got this fate instead).
    Shed,
}

/// Which queued job a full bounded queue evicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedOrder {
    /// Tail drop: the arriving job itself is shed (classic FIFO overflow —
    /// the baseline every bounded queue gets for free).
    Tail,
    /// Evict the queued job with the *highest* shed priority, provided it
    /// is strictly higher than the arrival's (ties shed the arrival). With
    /// priority = predicted relative variance `σ/μ`, this sheds the work
    /// whose runtime the predictor is least sure about — the worst SLO
    /// bets per slot of capacity.
    HighestPriority,
}

/// Bounded-queue overload behaviour for admitted jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedConfig {
    /// Maximum admitted jobs waiting for a server (`None` = unbounded:
    /// no shedding ever, the [`simulate`] semantics).
    pub capacity: Option<usize>,
    pub order: ShedOrder,
}

impl ShedConfig {
    /// No queue bound: shedding disabled.
    pub fn unbounded() -> Self {
        Self {
            capacity: None,
            order: ShedOrder::Tail,
        }
    }

    /// Queue bounded at `capacity` waiting jobs (clamped to ≥ 1).
    pub fn bounded(capacity: usize, order: ShedOrder) -> Self {
        Self {
            capacity: Some(capacity.max(1)),
            order,
        }
    }
}

impl Default for ShedConfig {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// Per-job fates of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    pub fates: Vec<JobFate>,
}

/// Why the scheduler is consulting the decision function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Consult {
    /// Arrival-time decision: the budget already has the projected FIFO
    /// queueing wait subtracted (admitted work joins the back of the
    /// queue). A queue-aware policy can distinguish "the queue is the
    /// problem" (defer) from "the query is the problem" (reject) — the
    /// carried wait lets it reconstruct the unqueued slack.
    Arrival { wait_ms: f64 },
    /// Retry re-decision at a freed server: the job starts *immediately*
    /// if admitted, so the budget is simply `slack − elapsed` — no queue
    /// term. This is what lets a parked job's budget exceed its
    /// arrival-time quote once the backlog drains.
    Retry,
}

impl Consult {
    /// The projected queueing wait behind an arrival consultation (0 for
    /// retries: the job starts immediately if admitted).
    pub fn wait_ms(&self) -> f64 {
        match self {
            Consult::Arrival { wait_ms } => *wait_ms,
            Consult::Retry => 0.0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum EventKind {
    Arrival(usize),
    Completion { job: usize, server: usize },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    at_ms: f64,
    /// Creation sequence: breaks time ties deterministically.
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at_ms
            .total_cmp(&other.at_ms)
            .then(self.seq.cmp(&other.seq))
    }
}

/// The FIFO wait a job admitted at `now` would see: project the current
/// commitments (running jobs, then the ready queue assigned greedily to the
/// earliest-free server) forward. This is the "known queueing delay" the
/// admission decision subtracts from the slack; retry conversions that jump
/// the queue later can stretch the realized wait beyond it — that is the
/// latency side of the latency/throughput trade the retry queue makes.
fn projected_wait(
    now: f64,
    running: &[Option<(usize, f64)>],
    ready: &VecDeque<usize>,
    jobs: &[SimJob],
) -> f64 {
    let mut avail: Vec<f64> = running
        .iter()
        .map(|r| r.map_or(now, |(_, finish)| finish))
        .collect();
    for &j in ready {
        let s = earliest(&avail);
        avail[s] = avail[s].max(now) + jobs[j].actual_ms;
    }
    (avail[earliest(&avail)] - now).max(0.0)
}

/// Index of the smallest availability time (lowest index on ties).
fn earliest(avail: &[f64]) -> usize {
    let mut best = 0;
    for (i, &t) in avail.iter().enumerate().skip(1) {
        if t.total_cmp(&avail[best]) == Ordering::Less {
            best = i;
        }
    }
    best
}

/// Runs the event-driven simulation. `decide` is called with a job index,
/// its remaining budget (ms), and the [`Consult`] context every time that
/// job is (re-)considered; it sees consultations in a deterministic
/// order, so a pure decision function yields bit-identical results across
/// runs.
pub fn simulate<F>(jobs: &[SimJob], servers: usize, retry: RetryConfig, decide: F) -> SimResult
where
    F: FnMut(usize, f64, Consult) -> Decision,
{
    simulate_shedding(jobs, servers, retry, ShedConfig::unbounded(), &[], decide)
}

/// [`simulate`] with a bounded ready queue: when an admitted job finds no
/// free server and the queue already holds `capacity` jobs, one job is
/// load-shed ([`JobFate::Shed`]) according to `shed.order`. `priority[i]`
/// is job `i`'s shed priority (higher sheds first; only read under
/// [`ShedOrder::HighestPriority`], where it must cover every job).
/// Everything else — retry queue, determinism guarantees — is unchanged;
/// with `ShedConfig::unbounded()` this *is* [`simulate`].
pub fn simulate_shedding<F>(
    jobs: &[SimJob],
    servers: usize,
    retry: RetryConfig,
    shed: ShedConfig,
    priority: &[f64],
    mut decide: F,
) -> SimResult
where
    F: FnMut(usize, f64, Consult) -> Decision,
{
    assert!(servers >= 1, "need at least one server");
    if shed.capacity.is_some() && shed.order == ShedOrder::HighestPriority {
        assert_eq!(
            priority.len(),
            jobs.len(),
            "priority shedding needs a priority per job"
        );
    }
    debug_assert!(
        jobs.windows(2).all(|w| w[0].arrive_ms <= w[1].arrive_ms),
        "jobs must be sorted by arrival time"
    );

    let mut fates: Vec<Option<JobFate>> = vec![None; jobs.len()];
    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (i, job) in jobs.iter().enumerate() {
        heap.push(Reverse(Event {
            at_ms: job.arrive_ms,
            seq,
            kind: EventKind::Arrival(i),
        }));
        seq += 1;
    }

    // Per-server currently-running job and its completion time.
    let mut running: Vec<Option<(usize, f64)>> = vec![None; servers];
    // Admitted jobs waiting for a server, FIFO.
    let mut ready: VecDeque<usize> = VecDeque::new();
    // Deferred jobs waiting for a re-decision, FIFO, with retry counts.
    let mut retry_q: VecDeque<(usize, usize)> = VecDeque::new();
    // Wait each started job accrued, and whether it converted via retry.
    let mut started_wait: Vec<f64> = vec![0.0; jobs.len()];
    let mut converted: Vec<bool> = vec![false; jobs.len()];

    let mut start = |job: usize,
                     server: usize,
                     now: f64,
                     running: &mut Vec<Option<(usize, f64)>>,
                     heap: &mut BinaryHeap<Reverse<Event>>,
                     started_wait: &mut Vec<f64>| {
        started_wait[job] = now - jobs[job].arrive_ms;
        let finish = now + jobs[job].actual_ms;
        running[server] = Some((job, finish));
        heap.push(Reverse(Event {
            at_ms: finish,
            seq,
            kind: EventKind::Completion { job, server },
        }));
        seq += 1;
    };

    while let Some(Reverse(ev)) = heap.pop() {
        let now = ev.at_ms;
        match ev.kind {
            EventKind::Arrival(i) => {
                let wait_est = projected_wait(now, &running, &ready, jobs);
                let budget = jobs[i].slack_ms - wait_est;
                match decide(i, budget, Consult::Arrival { wait_ms: wait_est }) {
                    Decision::Admit => {
                        if let Some(s) = running.iter().position(Option::is_none) {
                            start(i, s, now, &mut running, &mut heap, &mut started_wait);
                        } else if shed.capacity.is_some_and(|cap| ready.len() >= cap) {
                            match shed.order {
                                ShedOrder::Tail => fates[i] = Some(JobFate::Shed),
                                ShedOrder::HighestPriority => {
                                    // First max wins on ties: deterministic.
                                    let victim = ready.iter().enumerate().fold(
                                        None,
                                        |best: Option<(usize, usize)>, (pos, &j)| match best {
                                            Some((_, b)) if priority[j] <= priority[b] => best,
                                            _ => Some((pos, j)),
                                        },
                                    );
                                    match victim {
                                        Some((pos, j)) if priority[j] > priority[i] => {
                                            ready.remove(pos);
                                            fates[j] = Some(JobFate::Shed);
                                            ready.push_back(i);
                                        }
                                        // Queue holds nothing worse than
                                        // the arrival: shed the arrival.
                                        _ => fates[i] = Some(JobFate::Shed),
                                    }
                                }
                            }
                        } else {
                            ready.push_back(i);
                        }
                    }
                    Decision::Defer => {
                        if retry.enabled() {
                            retry_q.push_back((i, 0));
                        } else {
                            fates[i] = Some(JobFate::Dropped);
                        }
                    }
                    Decision::Reject => fates[i] = Some(JobFate::Rejected { converted: false }),
                }
            }
            EventKind::Completion { job, server } => {
                let sojourn = now - jobs[job].arrive_ms;
                fates[job] = Some(JobFate::Admitted {
                    converted: converted[job],
                    wait_ms: started_wait[job],
                    sojourn_ms: sojourn,
                    violated: sojourn > jobs[job].slack_ms,
                });
                running[server] = None;

                // Offer the freed slot to the retry queue first: each
                // parked job is re-decided with its recomputed budget. A
                // converting job starts *now* on this server — it skips
                // the ready queue, which is what lets its budget exceed
                // the arrival-time quote.
                let mut slot_free = true;
                let mut kept: VecDeque<(usize, usize)> = VecDeque::new();
                while let Some((cand, retries)) = retry_q.pop_front() {
                    if !slot_free {
                        kept.push_back((cand, retries));
                        continue;
                    }
                    let budget = jobs[cand].slack_ms - (now - jobs[cand].arrive_ms);
                    match decide(cand, budget, Consult::Retry) {
                        Decision::Admit => {
                            converted[cand] = true;
                            start(
                                cand,
                                server,
                                now,
                                &mut running,
                                &mut heap,
                                &mut started_wait,
                            );
                            slot_free = false;
                        }
                        Decision::Reject => {
                            fates[cand] = Some(JobFate::Rejected { converted: true });
                        }
                        Decision::Defer => {
                            if retries + 1 >= retry.max_retries {
                                fates[cand] = Some(JobFate::Rejected { converted: true });
                            } else {
                                kept.push_back((cand, retries + 1));
                            }
                        }
                    }
                }
                retry_q = kept;

                if slot_free {
                    if let Some(next) = ready.pop_front() {
                        start(
                            next,
                            server,
                            now,
                            &mut running,
                            &mut heap,
                            &mut started_wait,
                        );
                    }
                }
            }
        }
    }

    // Stream drained: jobs still parked can never see another event.
    for (cand, _) in retry_q {
        fates[cand] = Some(JobFate::Rejected { converted: true });
    }
    debug_assert!(ready.is_empty(), "admitted jobs always run to completion");

    SimResult {
        fates: fates
            .into_iter()
            .map(|f| f.expect("every job gets a fate"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fates(result: &SimResult) -> &[JobFate] {
        &result.fates
    }

    #[test]
    fn admit_all_single_server_is_a_fifo_queue() {
        // Three back-to-back jobs of 10 ms: waits 0, 10, 20.
        let jobs: Vec<SimJob> = (0..3)
            .map(|i| SimJob {
                arrive_ms: i as f64,
                slack_ms: 100.0,
                actual_ms: 10.0,
            })
            .collect();
        let r = simulate(&jobs, 1, RetryConfig::terminal(), |_, _, _| Decision::Admit);
        let expect_waits = [0.0, 9.0, 18.0];
        for (i, fate) in fates(&r).iter().enumerate() {
            match *fate {
                JobFate::Admitted {
                    wait_ms, violated, ..
                } => {
                    assert_eq!(wait_ms, expect_waits[i], "job {i}");
                    assert!(!violated);
                }
                other => panic!("job {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn two_servers_halve_the_backlog() {
        let jobs: Vec<SimJob> = (0..4)
            .map(|i| SimJob {
                arrive_ms: i as f64 * 0.0,
                slack_ms: 100.0,
                actual_ms: 10.0,
            })
            .collect();
        let r1 = simulate(&jobs, 1, RetryConfig::terminal(), |_, _, _| Decision::Admit);
        let r2 = simulate(&jobs, 2, RetryConfig::terminal(), |_, _, _| Decision::Admit);
        let total_wait = |r: &SimResult| -> f64 {
            fates(r)
                .iter()
                .map(|f| match *f {
                    JobFate::Admitted { wait_ms, .. } => wait_ms,
                    _ => panic!("all admitted"),
                })
                .sum()
        };
        assert!(total_wait(&r2) < total_wait(&r1));
    }

    #[test]
    fn deferred_job_converts_when_the_backlog_drains_early() {
        // Server busy with a 10 ms job; a 30 ms job queues behind it. A
        // third job arrives at t=1 with 15 ms slack: the projected wait is
        // 9 + 30 = 39 ms, so its budget is hopeless at arrival — the
        // policy defers. At t=10 the first completion frees the server;
        // recomputed budget = 15 − 9 = 6 ms ≥ its 5 ms service time, so
        // the retried job converts, jumping ahead of nothing (it takes the
        // freed slot before the ready queue's 30 ms job would).
        let jobs = vec![
            SimJob {
                arrive_ms: 0.0,
                slack_ms: 100.0,
                actual_ms: 10.0,
            },
            SimJob {
                arrive_ms: 0.5,
                slack_ms: 100.0,
                actual_ms: 30.0,
            },
            SimJob {
                arrive_ms: 1.0,
                slack_ms: 15.0,
                actual_ms: 5.0,
            },
        ];
        let r = simulate(&jobs, 1, RetryConfig::bounded(3), |i, budget, _| {
            if i < 2 || budget >= jobs[2].actual_ms {
                Decision::Admit
            } else {
                Decision::Defer
            }
        });
        match fates(&r)[2] {
            JobFate::Admitted {
                converted,
                wait_ms,
                violated,
                ..
            } => {
                assert!(converted, "came through the retry queue");
                assert_eq!(wait_ms, 9.0, "started at the first completion");
                assert!(!violated, "9 + 5 ≤ 15");
            }
            other => panic!("expected conversion, got {other:?}"),
        }
        // The queued 30 ms job was pushed back by the conversion but still ran.
        match fates(&r)[1] {
            JobFate::Admitted {
                converted, wait_ms, ..
            } => {
                assert!(!converted);
                assert_eq!(wait_ms, 14.5, "waited for job 0 and the converted job");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn retries_are_bounded_then_finally_rejected() {
        // A stream of admitted work generates completions; one job defers
        // forever. After max_retries re-decisions it must be rejected —
        // never dropped silently.
        let mut jobs: Vec<SimJob> = (0..6)
            .map(|i| SimJob {
                arrive_ms: i as f64,
                slack_ms: 1000.0,
                actual_ms: 5.0,
            })
            .collect();
        jobs.push(SimJob {
            arrive_ms: 2.5,
            slack_ms: 1000.0,
            actual_ms: 5.0,
        });
        jobs.sort_by(|a, b| a.arrive_ms.total_cmp(&b.arrive_ms));
        let stubborn = jobs
            .iter()
            .position(|j| j.arrive_ms == 2.5)
            .expect("present");
        let mut decisions = 0usize;
        let r = simulate(&jobs, 1, RetryConfig::bounded(2), |i, _, _| {
            if i == stubborn {
                decisions += 1;
                Decision::Defer
            } else {
                Decision::Admit
            }
        });
        assert_eq!(
            fates(&r)[stubborn],
            JobFate::Rejected { converted: true },
            "exhausted retries end in rejection"
        );
        // Initial decision + exactly max_retries re-decisions.
        assert_eq!(decisions, 3);
    }

    #[test]
    fn terminal_defer_reproduces_the_dropped_semantics() {
        let jobs = vec![SimJob {
            arrive_ms: 0.0,
            slack_ms: 10.0,
            actual_ms: 1.0,
        }];
        let r = simulate(&jobs, 1, RetryConfig::terminal(), |_, _, _| Decision::Defer);
        assert_eq!(fates(&r)[0], JobFate::Dropped);
    }

    #[test]
    fn parked_jobs_are_rejected_at_drain() {
        // Nothing ever runs, so no completion event fires: the deferred
        // job must still get a final verdict when the stream drains.
        let jobs = vec![SimJob {
            arrive_ms: 0.0,
            slack_ms: 10.0,
            actual_ms: 1.0,
        }];
        let r = simulate(&jobs, 1, RetryConfig::bounded(5), |_, _, _| Decision::Defer);
        assert_eq!(fates(&r)[0], JobFate::Rejected { converted: true });
    }

    #[test]
    fn simulation_is_deterministic() {
        let jobs: Vec<SimJob> = (0..50)
            .map(|i| SimJob {
                arrive_ms: i as f64 * 1.7,
                slack_ms: 10.0 + (i % 7) as f64 * 3.0,
                actual_ms: 4.0 + (i % 5) as f64,
            })
            .collect();
        let decide = |_: usize, budget: f64, _: Consult| {
            if budget > 8.0 {
                Decision::Admit
            } else if budget > 2.0 {
                Decision::Defer
            } else {
                Decision::Reject
            }
        };
        let a = simulate(&jobs, 2, RetryConfig::bounded(3), decide);
        let b = simulate(&jobs, 2, RetryConfig::bounded(3), decide);
        for (x, y) in a.fates.iter().zip(&b.fates) {
            match (x, y) {
                (
                    JobFate::Admitted {
                        converted: ca,
                        wait_ms: wa,
                        sojourn_ms: sa,
                        violated: va,
                    },
                    JobFate::Admitted {
                        converted: cb,
                        wait_ms: wb,
                        sojourn_ms: sb,
                        violated: vb,
                    },
                ) => {
                    assert_eq!(ca, cb);
                    assert_eq!(wa.to_bits(), wb.to_bits());
                    assert_eq!(sa.to_bits(), sb.to_bits());
                    assert_eq!(va, vb);
                }
                (x, y) => assert_eq!(x, y),
            }
        }
    }

    #[test]
    fn tail_drop_sheds_the_arrival_when_the_queue_is_full() {
        // One server, queue capacity 1: job 0 runs, job 1 queues, job 2
        // overflows and is tail-dropped.
        let jobs: Vec<SimJob> = (0..3)
            .map(|i| SimJob {
                arrive_ms: i as f64 * 0.1,
                slack_ms: 100.0,
                actual_ms: 10.0,
            })
            .collect();
        let r = simulate_shedding(
            &jobs,
            1,
            RetryConfig::terminal(),
            ShedConfig::bounded(1, ShedOrder::Tail),
            &[],
            |_, _, _| Decision::Admit,
        );
        assert!(matches!(r.fates[0], JobFate::Admitted { .. }));
        assert!(matches!(r.fates[1], JobFate::Admitted { .. }));
        assert_eq!(r.fates[2], JobFate::Shed);
    }

    #[test]
    fn priority_shedding_evicts_the_most_uncertain_queued_job() {
        // Same overload, but the queued job (1) carries a higher shed
        // priority than the arrival (2): the queue evicts job 1 and keeps
        // job 2, which then runs.
        let jobs: Vec<SimJob> = (0..3)
            .map(|i| SimJob {
                arrive_ms: i as f64 * 0.1,
                slack_ms: 100.0,
                actual_ms: 10.0,
            })
            .collect();
        let priority = [0.1, 5.0, 0.2];
        let r = simulate_shedding(
            &jobs,
            1,
            RetryConfig::terminal(),
            ShedConfig::bounded(1, ShedOrder::HighestPriority),
            &priority,
            |_, _, _| Decision::Admit,
        );
        assert!(matches!(r.fates[0], JobFate::Admitted { .. }));
        assert_eq!(r.fates[1], JobFate::Shed, "highest σ/μ goes first");
        assert!(matches!(r.fates[2], JobFate::Admitted { .. }));
    }

    #[test]
    fn priority_ties_shed_the_arrival_not_the_queue() {
        let jobs: Vec<SimJob> = (0..3)
            .map(|i| SimJob {
                arrive_ms: i as f64 * 0.1,
                slack_ms: 100.0,
                actual_ms: 10.0,
            })
            .collect();
        let priority = [1.0, 1.0, 1.0];
        let r = simulate_shedding(
            &jobs,
            1,
            RetryConfig::terminal(),
            ShedConfig::bounded(1, ShedOrder::HighestPriority),
            &priority,
            |_, _, _| Decision::Admit,
        );
        assert_eq!(r.fates[2], JobFate::Shed, "strictly greater evicts");
        assert!(matches!(r.fates[1], JobFate::Admitted { .. }));
    }

    #[test]
    fn unbounded_shed_config_reproduces_simulate_exactly() {
        let jobs: Vec<SimJob> = (0..30)
            .map(|i| SimJob {
                arrive_ms: i as f64 * 1.3,
                slack_ms: 12.0 + (i % 5) as f64,
                actual_ms: 4.0 + (i % 3) as f64,
            })
            .collect();
        let decide = |_: usize, budget: f64, _: Consult| {
            if budget > 6.0 {
                Decision::Admit
            } else {
                Decision::Reject
            }
        };
        let a = simulate(&jobs, 2, RetryConfig::bounded(2), decide);
        let b = simulate_shedding(
            &jobs,
            2,
            RetryConfig::bounded(2),
            ShedConfig::unbounded(),
            &[],
            decide,
        );
        assert_eq!(a.fates, b.fates);
    }

    #[test]
    fn every_job_gets_exactly_one_fate() {
        let jobs: Vec<SimJob> = (0..40)
            .map(|i| SimJob {
                arrive_ms: i as f64,
                slack_ms: 6.0,
                actual_ms: 3.0,
            })
            .collect();
        let r = simulate(&jobs, 1, RetryConfig::bounded(2), |i, budget, _| {
            match i % 3 {
                0 => Decision::Admit,
                1 if budget > 3.0 => Decision::Admit,
                1 => Decision::Defer,
                _ => Decision::Reject,
            }
        });
        assert_eq!(r.fates.len(), jobs.len());
    }
}
