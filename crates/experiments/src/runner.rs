//! The experiment runner: executes one matrix cell end-to-end and records,
//! per query, everything the paper's metrics need.
//!
//! A [`Lab`] caches the expensive parts across cells: generated databases,
//! cost-unit calibrations per machine, and — most importantly — the *full*
//! executions (true cardinalities + wall-clock), which depend only on
//! (database, benchmark), not on sampling ratio or machine.

use crate::config::{CellConfig, Machine};
use std::collections::HashMap;
use std::time::Instant;
use uaq_core::{Predictor, PredictorConfig};
use uaq_cost::{
    calibrate, simulate_actual_time, CalibrationConfig, NodeCostContext, SimConfig, UnitDists,
};
use uaq_datagen::DbPreset;
use uaq_engine::{execute_full, plan_query, NodeTrace, Plan};
use uaq_selest::SelSource;
use uaq_stats::Rng;
use uaq_storage::Catalog;
use uaq_workloads::Benchmark;

/// Per-operator selectivity observation (input to Tables 6–9 / Figure 12).
#[derive(Debug, Clone)]
pub struct SelRecord {
    pub node: usize,
    /// `ρ_n` — sampled estimate.
    pub estimated: f64,
    /// Estimated standard deviation of the estimate.
    pub estimated_std: f64,
    /// True selectivity from full execution.
    pub actual: f64,
}

impl SelRecord {
    /// Relative error `|ρ_n − ρ| / ρ` (Table 8's metric).
    pub fn relative_error(&self) -> f64 {
        uaq_stats::relative_error(self.estimated, self.actual)
    }

    /// Absolute estimation error.
    pub fn abs_error(&self) -> f64 {
        (self.estimated - self.actual).abs()
    }
}

/// Everything recorded about one query in one cell.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    pub name: String,
    /// Predicted mean `μ_i` (ms).
    pub predicted_mean_ms: f64,
    /// Predicted standard deviation `σ_i` (ms).
    pub predicted_std_ms: f64,
    /// Actual (simulated, 5-run average) time `t_i` (ms).
    pub actual_ms: f64,
    /// Wall-clock seconds of the real full execution.
    pub full_pass_seconds: f64,
    /// Wall-clock seconds of the sample pass inside prediction, measured
    /// by the lab via a [`uaq_telemetry::span::SpanRecorder`] around each
    /// predict call (the `Prediction` itself carries no wall-clock fields).
    pub sample_pass_seconds: f64,
    /// Per-operator selectivity observations (sampled operators only).
    pub sels: Vec<SelRecord>,
}

impl QueryRecord {
    /// Prediction error `e_i = |μ_i − t_i|` (§6.3).
    pub fn error_ms(&self) -> f64 {
        (self.predicted_mean_ms - self.actual_ms).abs()
    }

    /// Relative sampling overhead of this query (§6.4).
    pub fn relative_overhead(&self) -> f64 {
        if self.full_pass_seconds > 0.0 {
            self.sample_pass_seconds / self.full_pass_seconds
        } else {
            0.0
        }
    }
}

/// Result of one cell: the per-query records.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    pub config_label: String,
    pub records: Vec<QueryRecord>,
}

impl CellOutcome {
    pub fn predicted_stds(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.predicted_std_ms).collect()
    }

    pub fn errors(&self) -> Vec<f64> {
        self.records.iter().map(QueryRecord::error_ms).collect()
    }

    pub fn predicted_means(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.predicted_mean_ms).collect()
    }

    pub fn actuals(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.actual_ms).collect()
    }

    /// Mean relative sampling overhead across queries.
    pub fn mean_relative_overhead(&self) -> f64 {
        uaq_stats::mean(
            &self
                .records
                .iter()
                .map(QueryRecord::relative_overhead)
                .collect::<Vec<_>>(),
        )
    }
}

/// A fully executed (on base tables) prepared query, cached per
/// (database, benchmark).
struct PreparedQuery {
    name: String,
    plan: Plan,
    contexts: Vec<NodeCostContext>,
    traces: Vec<NodeTrace>,
    full_seconds: f64,
    /// True own-selectivity per node.
    true_sels: Vec<f64>,
}

/// Caching experiment laboratory.
pub struct Lab {
    seed: u64,
    sim: SimConfig,
    calibration: CalibrationConfig,
    dbs: HashMap<DbPreset, Catalog>,
    units: HashMap<Machine, UnitDists>,
    prepared: HashMap<(DbPreset, Benchmark, usize), Vec<PreparedQuery>>,
    /// Memoized cell outcomes (cells are deterministic given the lab seed,
    /// so different reports can share them — e.g. Table 4 and Figure 2).
    outcomes: HashMap<String, CellOutcome>,
}

impl Lab {
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            sim: SimConfig::default(),
            calibration: CalibrationConfig::default(),
            dbs: HashMap::new(),
            units: HashMap::new(),
            prepared: HashMap::new(),
            outcomes: HashMap::new(),
        }
    }

    /// Overrides the actual-time simulation settings (tests/ablations).
    pub fn with_sim_config(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    fn ensure_db(&mut self, preset: DbPreset) {
        let seed = self.seed;
        self.dbs
            .entry(preset)
            .or_insert_with(|| preset.build(seed ^ 0xD8));
    }

    /// The catalog for a preset (building it on first use).
    pub fn catalog(&mut self, preset: DbPreset) -> &Catalog {
        self.ensure_db(preset);
        &self.dbs[&preset]
    }

    /// Calibrated cost units for a machine (§3.1), cached.
    pub fn calibrated_units(&mut self, machine: Machine) -> UnitDists {
        if let Some(u) = self.units.get(&machine) {
            return *u;
        }
        let mut rng = Rng::new(self.seed ^ ((machine as u64 + 1) * 0x9E37));
        let units = calibrate(&machine.profile(), &self.calibration, &mut rng);
        self.units.insert(machine, units);
        units
    }

    fn ensure_prepared(&mut self, preset: DbPreset, benchmark: Benchmark, instances: usize) {
        if self.prepared.contains_key(&(preset, benchmark, instances)) {
            return;
        }
        self.ensure_db(preset);
        let catalog = &self.dbs[&preset];
        let mut rng = Rng::new(self.seed ^ 0xB0B ^ (benchmark as u64) << 8);
        let specs = benchmark.queries(catalog, instances, &mut rng);
        let prepared: Vec<PreparedQuery> = specs
            .iter()
            .map(|spec| {
                let plan = plan_query(spec, catalog);
                let t0 = Instant::now();
                let out = execute_full(&plan, catalog);
                let full_seconds = t0.elapsed().as_secs_f64();
                let contexts = NodeCostContext::build_all(&plan, catalog);
                let true_sels = plan
                    .node_ids()
                    .map(|id| {
                        let denom = contexts[id].own_leaf_product();
                        if denom > 0.0 {
                            out.traces[id].output_rows as f64 / denom
                        } else {
                            0.0
                        }
                    })
                    .collect();
                PreparedQuery {
                    name: spec.name.clone(),
                    plan,
                    contexts,
                    traces: out.traces,
                    full_seconds,
                    true_sels,
                }
            })
            .collect();
        self.prepared
            .insert((preset, benchmark, instances), prepared);
    }

    /// Runs one cell of the experiment matrix (memoized: cells are
    /// deterministic given the lab seed).
    pub fn run_cell(&mut self, cell: &CellConfig) -> CellOutcome {
        let key = cell.label();
        if let Some(outcome) = self.outcomes.get(&key) {
            return outcome.clone();
        }
        let outcome = self.run_cell_uncached(cell);
        self.outcomes.insert(key, outcome.clone());
        outcome
    }

    fn run_cell_uncached(&mut self, cell: &CellConfig) -> CellOutcome {
        self.ensure_prepared(cell.db, cell.benchmark, cell.instances);
        let units = self.calibrated_units(cell.machine);
        let profile = cell.machine.profile();

        // Fresh, cell-deterministic randomness for samples and actual runs.
        let mut rng = Rng::new(
            self.seed
                ^ (cell.db as u64) << 1
                ^ (cell.machine as u64) << 9
                ^ (cell.benchmark as u64) << 17
                ^ (cell.sampling_ratio * 1e6) as u64,
        );
        let catalog = &self.dbs[&cell.db];
        let samples = catalog.draw_samples(cell.sampling_ratio, 2, &mut rng);

        let predictor = Predictor::new(
            units,
            PredictorConfig {
                variant: cell.variant,
                ..Default::default()
            },
        );

        let prepared = &self.prepared[&(cell.db, cell.benchmark, cell.instances)];
        // Predictions are pure per-query work — fan them out (order
        // preserved, so outcomes are identical with or without the
        // `parallel` feature). The actual-time simulation stays sequential
        // because it consumes the cell's RNG stream in query order.
        let predictions = uaq_stats::parallel_map(prepared, |pq| {
            // The recorder is per-thread, so each parallel worker times its
            // own sample passes; the prediction itself stays bit-identical
            // with or without the recorder.
            let span = uaq_telemetry::span::SpanRecorder::begin();
            let prediction = predictor.predict(&pq.plan, catalog, &samples);
            let sample_secs = span.finish().get(uaq_telemetry::span::Stage::SamplePass);
            (prediction, sample_secs)
        });
        let records = prepared
            .iter()
            .zip(predictions)
            .map(|(pq, (prediction, sample_secs))| {
                let actual = simulate_actual_time(
                    &pq.plan,
                    &pq.contexts,
                    &pq.traces,
                    &profile,
                    &self.sim,
                    &mut rng,
                );
                let sels = prediction
                    .sel_estimates
                    .iter()
                    .filter(|e| e.source == SelSource::Sampled)
                    .map(|e| SelRecord {
                        node: e.node,
                        estimated: e.rho,
                        estimated_std: e.var.max(0.0).sqrt(),
                        actual: pq.true_sels[e.node],
                    })
                    .collect();
                QueryRecord {
                    name: pq.name.clone(),
                    predicted_mean_ms: prediction.mean_ms(),
                    predicted_std_ms: prediction.std_dev_ms(),
                    actual_ms: actual.mean_ms,
                    full_pass_seconds: pq.full_seconds,
                    sample_pass_seconds: sample_secs,
                    sels,
                }
            })
            .collect();

        CellOutcome {
            config_label: cell.label(),
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_workloads::Benchmark;

    fn tiny_lab() -> Lab {
        Lab::new(99)
    }

    #[test]
    fn micro_cell_produces_records() {
        let mut lab = tiny_lab();
        let cell = CellConfig::new(DbPreset::Uniform1G, Machine::Pc1, Benchmark::Micro, 0.05);
        let outcome = lab.run_cell(&cell);
        assert_eq!(outcome.records.len(), 72);
        for r in &outcome.records {
            assert!(r.predicted_mean_ms > 0.0, "{}: mean", r.name);
            assert!(r.predicted_std_ms > 0.0, "{}: std", r.name);
            assert!(r.actual_ms > 0.0, "{}: actual", r.name);
            assert!(!r.sels.is_empty(), "{}: sel records", r.name);
        }
    }

    #[test]
    fn cells_are_deterministic() {
        let run = || {
            let mut lab = tiny_lab();
            let cell = CellConfig::new(DbPreset::Uniform1G, Machine::Pc2, Benchmark::SelJoin, 0.05);
            lab.run_cell(&cell)
                .records
                .iter()
                .map(|r| (r.predicted_mean_ms, r.actual_ms))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn caching_reuses_full_executions() {
        let mut lab = tiny_lab();
        let mk = |sr: f64| CellConfig::new(DbPreset::Uniform1G, Machine::Pc1, Benchmark::Micro, sr);
        let a = lab.run_cell(&mk(0.01));
        let b = lab.run_cell(&mk(0.1));
        // Full-pass timings identical (cached), sample passes differ in work.
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.full_pass_seconds, y.full_pass_seconds);
        }
    }

    #[test]
    fn record_error_and_overhead() {
        let r = QueryRecord {
            name: "q".into(),
            predicted_mean_ms: 100.0,
            predicted_std_ms: 10.0,
            actual_ms: 120.0,
            full_pass_seconds: 2.0,
            sample_pass_seconds: 0.1,
            sels: vec![],
        };
        assert_eq!(r.error_ms(), 20.0);
        assert!((r.relative_overhead() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn sel_record_metrics() {
        let s = SelRecord {
            node: 0,
            estimated: 0.11,
            estimated_std: 0.02,
            actual: 0.1,
        };
        assert!((s.relative_error() - 0.1).abs() < 1e-9);
        assert!((s.abs_error() - 0.01).abs() < 1e-12);
    }
}
