//! The experiment configuration matrix of §6.1: databases × machines ×
//! sampling ratios × benchmarks (× predictor variants for §6.3.3).

use uaq_core::Variant;
use uaq_cost::HardwareProfile;
use uaq_datagen::DbPreset;
use uaq_workloads::Benchmark;

/// The two experiment machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Machine {
    Pc1,
    Pc2,
}

impl Machine {
    pub const ALL: [Machine; 2] = [Machine::Pc1, Machine::Pc2];

    pub fn profile(&self) -> HardwareProfile {
        match self {
            Machine::Pc1 => HardwareProfile::pc1(),
            Machine::Pc2 => HardwareProfile::pc2(),
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            Machine::Pc1 => "PC1",
            Machine::Pc2 => "PC2",
        }
    }
}

/// The sampling ratios of Tables 4–5.
pub const MAIN_SAMPLING_RATIOS: [f64; 3] = [0.01, 0.05, 0.1];

/// The sampling ratios of the ablation study (Figures 8/10). The paper
/// sweeps 0.0001–0.01 on databases 250× larger; what matters for the shape
/// is crossing from the selectivity-uncertainty-dominated regime (small
/// absolute samples — our low end) into the cost-unit-dominated regime
/// (ample samples — our high end), which these ratios do at our scale.
pub const ABLATION_SAMPLING_RATIOS: [f64; 4] = [0.005, 0.02, 0.08, 0.25];

/// One cell of the experiment matrix.
#[derive(Debug, Clone, Copy)]
pub struct CellConfig {
    pub db: DbPreset,
    pub machine: Machine,
    pub benchmark: Benchmark,
    pub sampling_ratio: f64,
    pub variant: Variant,
    /// Randomized instances per template (ignored by MICRO's fixed grid).
    pub instances: usize,
}

impl CellConfig {
    pub fn new(db: DbPreset, machine: Machine, benchmark: Benchmark, sampling_ratio: f64) -> Self {
        Self {
            db,
            machine,
            benchmark,
            sampling_ratio,
            variant: Variant::All,
            instances: default_instances(benchmark),
        }
    }

    pub fn with_variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    pub fn label(&self) -> String {
        format!(
            "{} / {} / {} / SR={} / {}",
            self.benchmark.label(),
            self.db.short_label(),
            self.machine.label(),
            self.sampling_ratio,
            self.variant.label()
        )
    }
}

/// Default per-template instance counts (sized so each benchmark yields a
/// few dozen queries, as in the paper's setup).
pub fn default_instances(benchmark: Benchmark) -> usize {
    match benchmark {
        Benchmark::Micro => 1,
        Benchmark::SelJoin => 4,
        Benchmark::Tpch => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machines_map_to_profiles() {
        assert_eq!(Machine::Pc1.profile().name(), "PC1");
        assert_eq!(Machine::Pc2.profile().name(), "PC2");
    }

    #[test]
    fn cell_labels_are_descriptive() {
        let cell = CellConfig::new(DbPreset::Uniform1G, Machine::Pc2, Benchmark::Micro, 0.05);
        assert_eq!(cell.label(), "MICRO / U-1G / PC2 / SR=0.05 / All");
    }

    #[test]
    fn variant_override() {
        let cell = CellConfig::new(DbPreset::Skewed1G, Machine::Pc1, Benchmark::Tpch, 0.01)
            .with_variant(Variant::NoCovariance);
        assert_eq!(cell.variant, Variant::NoCovariance);
        assert!(cell.label().contains("No Cov"));
    }
}
