//! Deadline-scheduling scenario: what is uncertainty *for*?
//!
//! The paper motivates distribution-valued predictions with exactly this
//! serving-time decision (§1, §6.5.3): a provider facing per-query deadline
//! SLOs should admit on `Pr(T ≤ deadline) ≥ θ`, not on `E[T] ≤ deadline`.
//! This scenario makes the claim measurable end-to-end on our substrate:
//!
//! * mixed MICRO / SELJOIN / TPCH traffic against one database,
//! * Poisson arrivals (seeded exponential inter-arrival times) into a
//!   single-server run queue,
//! * per-arrival deadline = arrival + slack, slack a random multiple of
//!   the query's *predicted* mean (the number a provider would quote),
//! * predictions served by the concurrent [`uaq_service`] worker pool with
//!   its plan-shape fit cache warm across repeated templates,
//! * identical arrival sequences and identical simulated actual times
//!   replayed under each admission policy.
//!
//! The reported metric is the SLO violation rate **among admitted
//! queries**: a mean-only policy happily admits budget ≈ mean arrivals
//! that then miss their deadline about half the time; the tail-probability
//! policy declines exactly those, trading a little throughput for a much
//! lower violation rate.

use crate::config::Machine;
use std::sync::Arc;
use uaq_core::{Prediction, Predictor, PredictorConfig};
use uaq_cost::{calibrate, simulate_actual_time, CalibrationConfig, NodeCostContext, SimConfig};
use uaq_datagen::DbPreset;
use uaq_engine::{execute_full, plan_query, NodeTrace, Plan};
use uaq_service::{
    AdmissionPolicy, CacheStats, Decision, PredictRequest, PredictionService, ServiceConfig,
};
use uaq_stats::Rng;
use uaq_workloads::Benchmark;

/// Scenario knobs. Everything is derived from `seed`; two runs with equal
/// configs produce identical reports.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineConfig {
    pub seed: u64,
    pub db: DbPreset,
    pub machine: Machine,
    pub sampling_ratio: f64,
    /// Number of query arrivals in the simulated stream.
    pub arrivals: usize,
    /// Target server utilization ρ; the Poisson rate is set to
    /// `ρ / mean actual service time` of the query pool.
    pub utilization: f64,
    /// Deadline slack as a multiple of the query's predicted mean, drawn
    /// uniformly from this range per arrival. Straddling 1.0 guarantees
    /// borderline arrivals — the regime where the policies disagree.
    pub slack_range: (f64, f64),
    /// Tail-probability admission confidence θ.
    pub theta: f64,
    /// Service worker threads used for the prediction pass.
    pub workers: usize,
}

impl Default for DeadlineConfig {
    fn default() -> Self {
        Self {
            seed: 2014,
            db: DbPreset::Uniform1G,
            machine: Machine::Pc1,
            sampling_ratio: 0.05,
            arrivals: 400,
            utilization: 0.6,
            slack_range: (0.85, 1.9),
            theta: 0.9,
            workers: 4,
        }
    }
}

/// Aggregates of one policy's replay of the arrival stream.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    pub label: String,
    pub admitted: usize,
    pub deferred: usize,
    pub rejected: usize,
    /// Admitted queries that finished after their deadline.
    pub violations: usize,
    pub mean_wait_ms: f64,
}

impl PolicyOutcome {
    /// SLO violation rate among admitted queries.
    pub fn violation_rate(&self) -> f64 {
        if self.admitted == 0 {
            0.0
        } else {
            self.violations as f64 / self.admitted as f64
        }
    }
}

/// The scenario's full result.
#[derive(Debug, Clone)]
pub struct DeadlineReport {
    pub arrivals: usize,
    pub distinct_queries: usize,
    pub cache: CacheStats,
    /// Outcomes in policy order: admit-all, mean-only, uncertainty-aware.
    pub outcomes: Vec<PolicyOutcome>,
}

impl DeadlineReport {
    pub fn outcome(&self, label: &str) -> &PolicyOutcome {
        self.outcomes
            .iter()
            .find(|o| o.label == label)
            .expect("known policy label")
    }

    /// Text rendering in the style of the paper-table renderers.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Deadline-aware admission: {} arrivals over {} distinct queries",
            self.arrivals, self.distinct_queries
        );
        let _ = writeln!(
            out,
            "fit cache: {} fit hits / {} misses ({:.0}% warm), {} context hits, {} shapes",
            self.cache.fit_hits,
            self.cache.fit_misses,
            100.0 * self.cache.fit_hit_rate(),
            self.cache.context_hits,
            self.cache.shapes
        );
        let _ = writeln!(
            out,
            "sel-est cache: {} hits / {} misses ({:.0}% sample passes skipped), {} instances",
            self.cache.sel_hits,
            self.cache.sel_misses,
            100.0 * self.cache.sel_hit_rate(),
            self.cache.sel_entries
        );
        let _ = writeln!(
            out,
            "{:<22} {:>8} {:>8} {:>8} {:>11} {:>10}",
            "policy", "admit", "defer", "reject", "violations", "viol rate"
        );
        for o in &self.outcomes {
            let _ = writeln!(
                out,
                "{:<22} {:>8} {:>8} {:>8} {:>11} {:>9.1}%",
                o.label,
                o.admitted,
                o.deferred,
                o.rejected,
                o.violations,
                100.0 * o.violation_rate()
            );
        }
        out
    }
}

/// One distinct query of the traffic pool, fully executed once for ground
/// truth (exactly like `Lab` caches its prepared queries).
struct PooledQuery {
    plan: Arc<Plan>,
    contexts: Vec<NodeCostContext>,
    traces: Vec<NodeTrace>,
    /// Filled by the first arrival of this query in the stream (queries the
    /// stream never draws stay unpredicted).
    prediction: Option<Prediction>,
}

fn request(id: u64, q: &PooledQuery) -> PredictRequest {
    PredictRequest {
        id,
        plan: Arc::clone(&q.plan),
        deadline_ms: None,
    }
}

/// One arrival of the simulated stream, shared verbatim by every policy.
struct Arrival {
    at_ms: f64,
    query: usize,
    slack_ms: f64,
    actual_ms: f64,
}

/// Runs the scenario. Deterministic for a given config.
pub fn run_deadline_scenario(config: &DeadlineConfig) -> DeadlineReport {
    let catalog = Arc::new(config.db.build(config.seed ^ 0xD8));
    let mut rng = Rng::new(config.seed ^ 0x5C4ED);
    let units = calibrate(
        &config.machine.profile(),
        &CalibrationConfig::default(),
        &mut rng,
    );
    let samples = Arc::new(catalog.draw_samples(config.sampling_ratio, 2, &mut rng));
    let predictor = Predictor::new(units, PredictorConfig::default());

    // Mixed traffic pool: a slice of the MICRO grid plus randomized SELJOIN
    // and TPCH template instances.
    let mut specs = Vec::new();
    specs.extend(
        Benchmark::Micro
            .queries(&catalog, 1, &mut rng)
            .into_iter()
            .step_by(4),
    );
    specs.extend(Benchmark::SelJoin.queries(&catalog, 2, &mut rng));
    specs.extend(Benchmark::Tpch.queries(&catalog, 1, &mut rng));

    // The pool of distinct queries, each fully executed once for ground
    // truth (exactly like `Lab` caches its prepared queries).
    let mut pool: Vec<PooledQuery> = specs
        .iter()
        .map(|spec| {
            let plan = Arc::new(plan_query(spec, &catalog));
            let out = execute_full(&plan, &catalog);
            let contexts = NodeCostContext::build_all(&plan, &catalog);
            PooledQuery {
                plan,
                contexts,
                traces: out.traces,
                prediction: None,
            }
        })
        .collect();

    // Poisson rate from the pool's mean actual service time at the target
    // utilization.
    let profile = config.machine.profile();
    let sim = SimConfig {
        runs: 1,
        ..SimConfig::default()
    };
    let pool_mean_ms = {
        let mut probe_rng = Rng::new(config.seed ^ 0xA11);
        let total: f64 = pool
            .iter()
            .map(|q| {
                simulate_actual_time(
                    &q.plan,
                    &q.contexts,
                    &q.traces,
                    &profile,
                    &sim,
                    &mut probe_rng,
                )
                .mean_ms
            })
            .sum();
        total / pool.len() as f64
    };
    let mean_gap_ms = pool_mean_ms / config.utilization.max(1e-3);

    // Arrival skeleton: Poisson arrival times and query choices.
    let mut clock = 0.0;
    let skeleton: Vec<(f64, usize)> = (0..config.arrivals)
        .map(|_| {
            clock += -(1.0 - rng.f64()).ln() * mean_gap_ms;
            (clock, rng.usize_below(pool.len()))
        })
        .collect();

    // One prediction request per *arrival* through the concurrent service —
    // the serving pattern the plan-shape fit cache exists for: the first
    // arrival of each template pays the grid fits, repeats hit warm entries
    // (bit-identically, so submission/scheduling order cannot matter).
    let service = PredictionService::start(
        predictor,
        Arc::clone(&catalog),
        Arc::clone(&samples),
        ServiceConfig {
            workers: config.workers,
            ..Default::default()
        },
    );
    let receivers: Vec<_> = skeleton
        .iter()
        .enumerate()
        .map(|(i, &(_, query))| service.submit(request(i as u64, &pool[query])))
        .collect();
    for (&(_, query), rx) in skeleton.iter().zip(receivers) {
        let prediction = rx.recv().expect("service worker alive").prediction;
        pool[query].prediction.get_or_insert(prediction);
    }
    let cache = service.cache_stats();
    service.shutdown();

    // The rest of the stream: slacks and the one actual execution time draw
    // each arrival would take if run — identical under every policy.
    let arrivals: Vec<Arrival> = skeleton
        .iter()
        .map(|&(at_ms, query)| {
            let q = &pool[query];
            let slack_ms = rng.f64_range(config.slack_range.0, config.slack_range.1)
                * q.prediction.as_ref().expect("predicted above").mean_ms();
            let actual_ms =
                simulate_actual_time(&q.plan, &q.contexts, &q.traces, &profile, &sim, &mut rng)
                    .mean_ms;
            Arrival {
                at_ms,
                query,
                slack_ms,
                actual_ms,
            }
        })
        .collect();

    let policies: Vec<(String, Option<AdmissionPolicy>)> = vec![
        ("admit-all".into(), None),
        ("mean-only".into(), Some(AdmissionPolicy::mean_only())),
        (
            format!("uncertainty (θ={})", config.theta),
            Some(AdmissionPolicy::uncertainty_aware(config.theta)),
        ),
    ];
    let outcomes = policies
        .into_iter()
        .map(|(label, policy)| replay(&label, policy, &arrivals, &pool))
        .collect();

    DeadlineReport {
        arrivals: config.arrivals,
        distinct_queries: pool.len(),
        cache,
        outcomes,
    }
}

/// Replays the arrival stream through one single-server queue under one
/// admission policy.
fn replay(
    label: &str,
    policy: Option<AdmissionPolicy>,
    arrivals: &[Arrival],
    pool: &[PooledQuery],
) -> PolicyOutcome {
    let mut busy_until = 0.0f64;
    let mut outcome = PolicyOutcome {
        label: label.to_owned(),
        admitted: 0,
        deferred: 0,
        rejected: 0,
        violations: 0,
        mean_wait_ms: 0.0,
    };
    let mut total_wait = 0.0;
    for a in arrivals {
        let wait = (busy_until - a.at_ms).max(0.0);
        // Remaining budget once the known queueing delay is subtracted —
        // the deadline-aware part of admission control.
        let budget = a.slack_ms - wait;
        let decision = match &policy {
            None => Decision::Admit,
            Some(p) => {
                let prediction = pool[a.query]
                    .prediction
                    .as_ref()
                    .expect("arrived ⇒ predicted");
                p.decide(prediction, Some(budget)).0
            }
        };
        match decision {
            Decision::Admit => {
                outcome.admitted += 1;
                total_wait += wait;
                busy_until = a.at_ms + wait + a.actual_ms;
                if wait + a.actual_ms > a.slack_ms {
                    outcome.violations += 1;
                }
            }
            Decision::Defer => outcome.deferred += 1,
            Decision::Reject => outcome.rejected += 1,
        }
    }
    if outcome.admitted > 0 {
        outcome.mean_wait_ms = total_wait / outcome.admitted as f64;
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> DeadlineConfig {
        DeadlineConfig {
            arrivals: 250,
            workers: 3,
            ..Default::default()
        }
    }

    #[test]
    fn uncertainty_aware_beats_mean_only_on_violation_rate() {
        let report = run_deadline_scenario(&small_config());
        let mean_only = report.outcome("mean-only");
        let tail = report.outcome("uncertainty (θ=0.9)");
        let admit_all = report.outcome("admit-all");
        assert!(
            tail.violation_rate() < mean_only.violation_rate(),
            "tail {} vs mean-only {}\n{}",
            tail.violation_rate(),
            mean_only.violation_rate(),
            report.render()
        );
        assert!(
            mean_only.violation_rate() <= admit_all.violation_rate() + 1e-12,
            "any admission control should not hurt:\n{}",
            report.render()
        );
        // The tail policy must still do useful work, not reject everything.
        assert!(
            tail.admitted * 3 >= mean_only.admitted,
            "tail admits too little:\n{}",
            report.render()
        );
        assert_eq!(admit_all.admitted, report.arrivals);
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = run_deadline_scenario(&small_config());
        let b = run_deadline_scenario(&small_config());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.admitted, y.admitted);
            assert_eq!(x.violations, y.violations);
            assert_eq!(x.mean_wait_ms.to_bits(), y.mean_wait_ms.to_bits());
        }
    }

    #[test]
    fn traffic_warms_the_fit_cache() {
        let report = run_deadline_scenario(&small_config());
        // MICRO's literal-perturbed grid and the repeated SELJOIN/TPCH
        // templates must collapse onto shared shape entries.
        assert!(
            (report.cache.shapes as f64) < 0.8 * report.distinct_queries as f64,
            "shapes {} vs distinct queries {}",
            report.cache.shapes,
            report.distinct_queries
        );
        assert!(report.cache.context_hits + report.cache.fit_hits > 0);
        // Repeated arrivals of one pooled query are identical instances:
        // every repeat after the first skips the sample pass entirely.
        assert!(
            report.cache.sel_hits > 0,
            "repeated arrivals should hit the estimate cache: {:?}",
            report.cache
        );
        assert!(report.cache.sel_entries > 0);
    }

    #[test]
    fn report_renders_all_policies() {
        let report = run_deadline_scenario(&DeadlineConfig {
            arrivals: 40,
            ..Default::default()
        });
        let text = report.render();
        assert!(text.contains("admit-all"));
        assert!(text.contains("mean-only"));
        assert!(text.contains("uncertainty"));
        assert!(text.contains("viol rate"));
    }
}
