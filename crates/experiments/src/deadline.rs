//! Deadline-scheduling scenario: what is uncertainty *for*?
//!
//! The paper motivates distribution-valued predictions with exactly this
//! serving-time decision (§1, §6.5.3): a provider facing per-query deadline
//! SLOs should admit on `Pr(T ≤ deadline) ≥ θ`, not on `E[T] ≤ deadline`.
//! This scenario makes the claim measurable end-to-end on our substrate:
//!
//! * mixed MICRO / SELJOIN / TPCH traffic against one database,
//! * Poisson or bursty (Markov-modulated) arrivals into an event-driven
//!   multi-server run queue ([`crate::sim`]),
//! * per-arrival deadline = arrival + slack, slack a random multiple of
//!   the query's *predicted* mean (the number a provider would quote),
//! * predictions served by the concurrent [`uaq_service`] worker pool with
//!   its plan-shape fit cache warm across repeated templates,
//! * identical arrival sequences and identical simulated actual times
//!   replayed under each admission policy.
//!
//! `Defer` is no longer a black hole: a deferred arrival parks in the
//! scheduler's retry queue and is re-decided with its recomputed remaining
//! budget (`slack − elapsed wait`) whenever a server frees up, converting
//! to an admission when the backlog drains fast enough and to a final
//! rejection otherwise (bounded retries). The report therefore shows the
//! full trade: per-policy throughput, p50/p95 admitted sojourn, the
//! defer→admit vs defer→reject conversion split, and the SLO violation
//! rate among admitted queries.

use crate::config::Machine;
use crate::sim::{simulate, Consult, JobFate, RetryConfig, SimJob};
use std::sync::Arc;
use uaq_core::{Prediction, Predictor, PredictorConfig};
use uaq_cost::{calibrate, simulate_actual_time, CalibrationConfig, NodeCostContext, SimConfig};
use uaq_datagen::DbPreset;
use uaq_engine::{execute_full, plan_query, NodeTrace, Plan};
use uaq_service::{
    AdmissionPolicy, CacheStats, Decision, PredictRequest, PredictionService, ServiceConfig,
    TenantId,
};
use uaq_stats::Rng;
use uaq_telemetry::{CalibrationMonitor, Observation, ShapeCalibration};
use uaq_workloads::Benchmark;

/// How inter-arrival gaps are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless Poisson arrivals at the target utilization.
    Poisson,
    /// Markov-modulated Poisson: two phases (calm / burst) with a
    /// per-arrival phase-switch probability; the arrival rate is the base
    /// rate times the phase multiplier, normalized so the long-run mean
    /// rate still matches the target utilization (per-arrival switching
    /// splits arrivals ~50/50 between phases).
    Bursty {
        /// Rate multiplier inside a burst (> 1 packs arrivals together).
        burst_rate: f64,
        /// Rate multiplier between bursts (< 1 spreads arrivals out).
        calm_rate: f64,
        /// Per-arrival probability of switching phase.
        switch_prob: f64,
    },
}

impl ArrivalProcess {
    /// A bursty default: 3× rate inside bursts, 0.4× between them.
    pub fn bursty() -> Self {
        Self::Bursty {
            burst_rate: 3.0,
            calm_rate: 0.4,
            switch_prob: 0.08,
        }
    }
}

/// Scenario knobs. Everything is derived from `seed`; two runs with equal
/// configs produce identical reports.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineConfig {
    pub seed: u64,
    pub db: DbPreset,
    pub machine: Machine,
    pub sampling_ratio: f64,
    /// Number of query arrivals in the simulated stream.
    pub arrivals: usize,
    /// Target per-server utilization ρ; the arrival rate is set to
    /// `ρ · servers / mean actual service time` of the query pool.
    pub utilization: f64,
    /// Deadline slack as a multiple of the query's predicted mean, drawn
    /// uniformly from this range per arrival. Straddling 1.0 guarantees
    /// borderline arrivals — the regime where the policies disagree.
    pub slack_range: (f64, f64),
    /// Tail-probability admission confidence θ.
    pub theta: f64,
    /// Service worker threads used for the prediction pass.
    pub workers: usize,
    /// Parallel servers executing admitted queries.
    pub servers: usize,
    /// Arrival process shape.
    pub arrival_process: ArrivalProcess,
    /// Retry behaviour for deferred arrivals ([`RetryConfig::terminal`]
    /// reproduces the old drop-on-defer semantics).
    pub retry: RetryConfig,
}

impl Default for DeadlineConfig {
    fn default() -> Self {
        Self {
            seed: 2014,
            db: DbPreset::Uniform1G,
            machine: Machine::Pc1,
            sampling_ratio: 0.05,
            arrivals: 400,
            utilization: 0.6,
            slack_range: (0.85, 1.9),
            theta: 0.9,
            workers: 4,
            servers: 1,
            arrival_process: ArrivalProcess::Poisson,
            retry: RetryConfig::default(),
        }
    }
}

/// Aggregates of one policy's replay of the arrival stream.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    pub label: String,
    /// Queries that ran: direct admissions plus defer→admit conversions.
    pub admitted: usize,
    /// Admitted directly at arrival time.
    pub admitted_direct: usize,
    /// Deferred arrivals later admitted by the retry queue.
    pub defer_to_admit: usize,
    /// Deferred arrivals finally rejected (re-decided to reject, retries
    /// exhausted, or still parked when the stream drained).
    pub defer_to_reject: usize,
    /// Terminal defers (retries disabled): dropped without a verdict.
    pub dropped: usize,
    /// Rejected directly at arrival time.
    pub rejected: usize,
    /// Admitted queries that finished after their deadline.
    pub violations: usize,
    pub mean_wait_ms: f64,
    /// Median sojourn (wait + service) among admitted queries.
    pub p50_sojourn_ms: f64,
    /// 95th-percentile sojourn among admitted queries.
    pub p95_sojourn_ms: f64,
}

impl PolicyOutcome {
    /// Queries that did useful work (the throughput side of the trade).
    pub fn throughput(&self) -> usize {
        self.admitted
    }

    /// SLO violation rate among admitted queries. `NaN` when nothing was
    /// admitted: a reject-everything policy has no SLO record at all, not
    /// a perfect one (rendered as `n/a`). Compare rates only between
    /// policies that both admitted work.
    pub fn violation_rate(&self) -> f64 {
        if self.admitted == 0 {
            f64::NAN
        } else {
            self.violations as f64 / self.admitted as f64
        }
    }
}

/// The scenario's full result.
#[derive(Debug, Clone)]
pub struct DeadlineReport {
    pub arrivals: usize,
    pub distinct_queries: usize,
    pub servers: usize,
    pub utilization: f64,
    pub cache: CacheStats,
    /// Outcomes in policy order: admit-all, mean-only, uncertainty-aware.
    pub outcomes: Vec<PolicyOutcome>,
    /// Per-shape calibration of the predicted distributions against the
    /// stream's simulated actual times: interval coverage, mean PIT, and
    /// predicted vs observed `Pr(T > slack)`. Policy-independent (every
    /// policy replays the same arrivals), deterministic, and also exported
    /// as `uaq_calibration_*` gauges on the prediction service's registry.
    pub calibration: Vec<ShapeCalibration>,
}

/// Renders a zero-to-one rate for the report tables: `NaN` (the unified
/// "zero denominator, no data" convention shared by `violation_rate`,
/// `fit_hit_rate`, and `sel_hit_rate`) prints as `n/a`, never as `NaN%`.
pub(crate) fn fmt_rate(rate: f64) -> String {
    if rate.is_nan() {
        "n/a".to_owned()
    } else {
        format!("{:.1}%", 100.0 * rate)
    }
}

impl DeadlineReport {
    /// Looks up a policy outcome by its label. `None` for unknown labels —
    /// the θ-formatted uncertainty label makes typo-panics easy otherwise.
    pub fn outcome(&self, label: &str) -> Option<&PolicyOutcome> {
        self.outcomes.iter().find(|o| o.label == label)
    }

    /// Text rendering in the style of the paper-table renderers.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Deadline-aware admission: {} arrivals over {} distinct queries, {} server(s), ρ = {:.2}",
            self.arrivals, self.distinct_queries, self.servers, self.utilization
        );
        let _ = writeln!(
            out,
            "fit cache: {} fit hits / {} misses ({} warm), {} context hits, {} shapes",
            self.cache.fit_hits,
            self.cache.fit_misses,
            fmt_rate(self.cache.fit_hit_rate()),
            self.cache.context_hits,
            self.cache.shapes
        );
        let _ = writeln!(
            out,
            "sel-est cache: {} hits / {} misses ({} sample passes skipped), {} instances",
            self.cache.sel_hits,
            self.cache.sel_misses,
            fmt_rate(self.cache.sel_hit_rate()),
            self.cache.sel_entries
        );
        let _ = writeln!(
            out,
            "{:<22} {:>6} {:>6} {:>6} {:>5} {:>7} {:>5} {:>9} {:>9} {:>9}",
            "policy",
            "admit",
            "d→adm",
            "d→rej",
            "drop",
            "reject",
            "viol",
            "viol rate",
            "p50 ms",
            "p95 ms"
        );
        for o in &self.outcomes {
            let _ = writeln!(
                out,
                "{:<22} {:>6} {:>6} {:>6} {:>5} {:>7} {:>5} {:>9} {:>9.1} {:>9.1}",
                o.label,
                o.admitted,
                o.defer_to_admit,
                o.defer_to_reject,
                o.dropped,
                o.rejected,
                o.violations,
                fmt_rate(o.violation_rate()),
                o.p50_sojourn_ms,
                o.p95_sojourn_ms,
            );
        }
        if !self.calibration.is_empty() {
            let _ = writeln!(
                out,
                "calibration (predicted distribution vs simulated actual):"
            );
            out.push_str(&ShapeCalibration::render_table(&self.calibration));
        }
        out
    }

    /// Arrival-weighted empirical coverage of the predicted central
    /// interval at `level` ∈ {50, 90, 99}, across all shapes. `NaN` when
    /// the report carries no calibration data.
    pub fn overall_coverage(&self, level: u32) -> f64 {
        let total: u64 = self.calibration.iter().map(|s| s.n).sum();
        if total == 0 {
            return f64::NAN;
        }
        let covered: f64 = self
            .calibration
            .iter()
            .map(|s| {
                s.n as f64
                    * match level {
                        50 => s.coverage50,
                        90 => s.coverage90,
                        99 => s.coverage99,
                        _ => panic!("coverage level must be 50, 90, or 99"),
                    }
            })
            .sum();
        covered / total as f64
    }
}

/// Renders a utilization sweep as one compact table: per ρ, each policy's
/// throughput and violation rate.
pub fn render_utilization_sweep(reports: &[DeadlineReport]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let Some(first) = reports.first() else {
        return out;
    };
    let _ = write!(out, "{:>5}", "ρ");
    for o in &first.outcomes {
        let _ = write!(out, "  {:>22}", o.label);
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:>5}", "");
    for _ in &first.outcomes {
        let _ = write!(out, "  {:>12} {:>9}", "throughput", "viol rate");
    }
    let _ = writeln!(out);
    for r in reports {
        let _ = write!(out, "{:>5.2}", r.utilization);
        for o in &r.outcomes {
            let _ = write!(
                out,
                "  {:>12} {:>9}",
                o.throughput(),
                fmt_rate(o.violation_rate())
            );
        }
        let _ = writeln!(out);
    }
    out
}

/// One distinct query of the traffic pool, fully executed once for ground
/// truth (exactly like `Lab` caches its prepared queries).
pub(crate) struct PooledQuery {
    pub(crate) plan: Arc<Plan>,
    contexts: Vec<NodeCostContext>,
    traces: Vec<NodeTrace>,
    /// Compact calibration label (`shape-<shape_hash>`); literal-insensitive,
    /// so repeated template instances tally into one row.
    shape: String,
    /// Filled by the first arrival of this query in the stream (queries the
    /// stream never draws stay unpredicted).
    pub(crate) prediction: Option<Prediction>,
}

fn request(id: u64, q: &PooledQuery) -> PredictRequest {
    PredictRequest {
        id,
        plan: Arc::clone(&q.plan),
        deadline_ms: None,
        tenant: TenantId::default(),
    }
}

/// One arrival of the simulated stream, shared verbatim by every policy.
pub(crate) struct Arrival {
    pub(crate) at_ms: f64,
    pub(crate) query: usize,
    pub(crate) slack_ms: f64,
    pub(crate) actual_ms: f64,
}

/// Everything the scenario derives once per config and reuses across
/// utilization sweep points: the executed query pool, the running
/// prediction service (cache warm across runs — hits are bit-identical,
/// so reuse cannot change any report), and the pool's mean service time.
pub(crate) struct Prepared {
    pub(crate) pool: Vec<PooledQuery>,
    pub(crate) service: PredictionService,
    profile: uaq_cost::HardwareProfile,
    sim: SimConfig,
    pool_mean_ms: f64,
}

pub(crate) fn prepare(config: &DeadlineConfig) -> Prepared {
    let catalog = Arc::new(config.db.build(config.seed ^ 0xD8));
    let mut rng = Rng::new(config.seed ^ 0x5C4ED);
    let units = calibrate(
        &config.machine.profile(),
        &CalibrationConfig::default(),
        &mut rng,
    );
    let samples = Arc::new(catalog.draw_samples(config.sampling_ratio, 2, &mut rng));
    let predictor = Predictor::new(units, PredictorConfig::default());

    // Mixed traffic pool: a slice of the MICRO grid plus randomized SELJOIN
    // and TPCH template instances.
    let mut specs = Vec::new();
    specs.extend(
        Benchmark::Micro
            .queries(&catalog, 1, &mut rng)
            .into_iter()
            .step_by(4),
    );
    specs.extend(Benchmark::SelJoin.queries(&catalog, 2, &mut rng));
    specs.extend(Benchmark::Tpch.queries(&catalog, 1, &mut rng));

    let pool: Vec<PooledQuery> = specs
        .iter()
        .map(|spec| {
            let plan = Arc::new(plan_query(spec, &catalog));
            let out = execute_full(&plan, &catalog);
            let contexts = NodeCostContext::build_all(&plan, &catalog);
            PooledQuery {
                shape: format!("shape-{:016x}", plan.shape_hash()),
                plan,
                contexts,
                traces: out.traces,
                prediction: None,
            }
        })
        .collect();

    // Mean actual service time of the pool, for the arrival-rate target.
    let profile = config.machine.profile();
    let sim = SimConfig {
        runs: 1,
        ..SimConfig::default()
    };
    let pool_mean_ms = {
        let mut probe_rng = Rng::new(config.seed ^ 0xA11);
        let total: f64 = pool
            .iter()
            .map(|q| {
                simulate_actual_time(
                    &q.plan,
                    &q.contexts,
                    &q.traces,
                    &profile,
                    &sim,
                    &mut probe_rng,
                )
                .mean_ms
            })
            .sum();
        total / pool.len() as f64
    };

    let service = PredictionService::start(
        predictor,
        Arc::clone(&catalog),
        Arc::clone(&samples),
        ServiceConfig {
            workers: config.workers,
            ..Default::default()
        },
    );

    Prepared {
        pool,
        service,
        profile,
        sim,
        pool_mean_ms,
    }
}

/// Generates one arrival stream (times, query choices, slacks, actual
/// execution times) for the given utilization, predicting each arrival
/// through the concurrent service — the serving pattern the plan-shape fit
/// cache exists for: the first arrival of each template pays the grid
/// fits, repeats hit warm entries (bit-identically, so submission order
/// and sweep-point reuse cannot matter).
pub(crate) fn generate_arrivals(prepared: &mut Prepared, config: &DeadlineConfig) -> Vec<Arrival> {
    // The stream RNG is seeded per (seed, utilization) so every sweep
    // point is independently deterministic.
    let mut rng = Rng::new(config.seed ^ 0x57AEA ^ config.utilization.to_bits());
    let mean_gap_ms =
        prepared.pool_mean_ms / (config.utilization.max(1e-3) * config.servers as f64);

    // Arrival skeleton: arrival times and query choices.
    let mut clock = 0.0;
    let mut burst = false;
    let skeleton: Vec<(f64, usize)> = (0..config.arrivals)
        .map(|_| {
            let gap_scale = match config.arrival_process {
                ArrivalProcess::Poisson => 1.0,
                ArrivalProcess::Bursty {
                    burst_rate,
                    calm_rate,
                    switch_prob,
                } => {
                    if rng.f64() < switch_prob {
                        burst = !burst;
                    }
                    // Normalize so the long-run mean gap stays mean_gap_ms
                    // (per-arrival switching spends ~half the arrivals in
                    // each phase).
                    let norm = 0.5 * (1.0 / burst_rate + 1.0 / calm_rate);
                    (if burst {
                        1.0 / burst_rate
                    } else {
                        1.0 / calm_rate
                    }) / norm
                }
            };
            clock += -(1.0 - rng.f64()).ln() * mean_gap_ms * gap_scale;
            (clock, rng.usize_below(prepared.pool.len()))
        })
        .collect();

    // One prediction request per *arrival* through the concurrent service.
    let receivers: Vec<_> = skeleton
        .iter()
        .enumerate()
        .map(|(i, &(_, query))| {
            prepared
                .service
                .submit(request(i as u64, &prepared.pool[query]))
        })
        .collect();
    for (&(_, query), rx) in skeleton.iter().zip(receivers) {
        let prediction = rx.recv().expect("service worker alive").prediction;
        prepared.pool[query].prediction.get_or_insert(prediction);
    }

    // The rest of the stream: slacks and the one actual execution time draw
    // each arrival would take if run — identical under every policy.
    skeleton
        .iter()
        .map(|&(at_ms, query)| {
            let q = &prepared.pool[query];
            let slack_ms = rng.f64_range(config.slack_range.0, config.slack_range.1)
                * q.prediction.as_ref().expect("predicted above").mean_ms();
            let actual_ms = simulate_actual_time(
                &q.plan,
                &q.contexts,
                &q.traces,
                &prepared.profile,
                &prepared.sim,
                &mut rng,
            )
            .mean_ms;
            Arrival {
                at_ms,
                query,
                slack_ms,
                actual_ms,
            }
        })
        .collect()
}

/// Digests one arrival stream into per-shape calibration tallies: PIT and
/// central-interval membership of the simulated actual time under each
/// arrival's predicted `N(E[t_q], Var[t_q])`, plus predicted vs observed
/// `Pr(T > slack)` — the quoted-deadline miss rate with no queueing, the
/// policy-independent half of the SLO question.
pub(crate) fn calibrate_stream(arrivals: &[Arrival], pool: &[PooledQuery]) -> CalibrationMonitor {
    let monitor = CalibrationMonitor::new();
    for a in arrivals {
        let q = &pool[a.query];
        let dist = q
            .prediction
            .as_ref()
            .expect("arrived ⇒ predicted")
            .distribution();
        let pit = dist.cdf(a.actual_ms);
        monitor.record(&Observation {
            shape: q.shape.clone(),
            observed_ms: a.actual_ms,
            pit,
            // Inside the central p-interval ⇔ the PIT lands within p/2 of
            // the median.
            in50: (pit - 0.5).abs() <= 0.25,
            in90: (pit - 0.5).abs() <= 0.45,
            in99: (pit - 0.5).abs() <= 0.495,
            predicted_violation: Some(1.0 - dist.cdf(a.slack_ms)),
            violated: Some(a.actual_ms > a.slack_ms),
        });
    }
    monitor
}

fn run_prepared(prepared: &mut Prepared, config: &DeadlineConfig) -> DeadlineReport {
    let arrivals = generate_arrivals(prepared, config);
    let cache = prepared.service.cache_stats();
    let monitor = calibrate_stream(&arrivals, &prepared.pool);
    monitor.export_gauges(prepared.service.registry());
    let calibration = monitor.report();

    let policies: Vec<(String, Option<AdmissionPolicy>)> = vec![
        ("admit-all".into(), None),
        ("mean-only".into(), Some(AdmissionPolicy::mean_only())),
        (
            format!("uncertainty (θ={})", config.theta),
            Some(AdmissionPolicy::uncertainty_aware(config.theta)),
        ),
    ];
    let outcomes = policies
        .into_iter()
        .map(|(label, policy)| {
            replay(
                &label,
                policy,
                &arrivals,
                &prepared.pool,
                config.servers,
                config.retry,
            )
        })
        .collect();

    DeadlineReport {
        arrivals: config.arrivals,
        distinct_queries: prepared.pool.len(),
        servers: config.servers,
        utilization: config.utilization,
        cache,
        outcomes,
        calibration,
    }
}

/// Runs the scenario. Deterministic for a given config.
pub fn run_deadline_scenario(config: &DeadlineConfig) -> DeadlineReport {
    let mut prepared = prepare(config);
    run_prepared(&mut prepared, config)
}

/// Runs the scenario once per utilization value, reusing one prepared
/// query pool and one warm prediction service across all sweep points
/// (cache hits are bit-identical, so each report equals a standalone
/// `run_deadline_scenario` at that ρ up to the accumulated cache
/// counters).
pub fn run_utilization_sweep(config: &DeadlineConfig, utilizations: &[f64]) -> Vec<DeadlineReport> {
    let mut prepared = prepare(config);
    utilizations
        .iter()
        .map(|&utilization| {
            run_prepared(
                &mut prepared,
                &DeadlineConfig {
                    utilization,
                    ..*config
                },
            )
        })
        .collect()
}

/// Linear-interpolated percentile of pre-sorted data; `NaN` when empty.
pub(crate) fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Replays the arrival stream through the event-driven scheduler under one
/// admission policy.
fn replay(
    label: &str,
    policy: Option<AdmissionPolicy>,
    arrivals: &[Arrival],
    pool: &[PooledQuery],
    servers: usize,
    retry: RetryConfig,
) -> PolicyOutcome {
    let jobs: Vec<SimJob> = arrivals
        .iter()
        .map(|a| SimJob {
            arrive_ms: a.at_ms,
            slack_ms: a.slack_ms,
            actual_ms: a.actual_ms,
        })
        .collect();
    let result = simulate(&jobs, servers, retry, |i, budget, consult| {
        let Some(p) = &policy else {
            return Decision::Admit;
        };
        let prediction = pool[arrivals[i].query]
            .prediction
            .as_ref()
            .expect("arrived ⇒ predicted");
        match consult {
            // Arrival: queue-aware — a backlog-caused reject becomes a
            // defer (park it, re-decide when the backlog drains).
            Consult::Arrival { wait_ms } => {
                p.decide_queued(prediction, budget + wait_ms, wait_ms).0
            }
            // Retry at a freed server: the job starts immediately if
            // admitted, so the plain budget decision applies.
            Consult::Retry => p.decide(prediction, Some(budget)).0,
        }
    });

    let mut outcome = PolicyOutcome {
        label: label.to_owned(),
        admitted: 0,
        admitted_direct: 0,
        defer_to_admit: 0,
        defer_to_reject: 0,
        dropped: 0,
        rejected: 0,
        violations: 0,
        mean_wait_ms: 0.0,
        p50_sojourn_ms: f64::NAN,
        p95_sojourn_ms: f64::NAN,
    };
    let mut total_wait = 0.0;
    let mut sojourns: Vec<f64> = Vec::new();
    for fate in &result.fates {
        match *fate {
            JobFate::Admitted {
                converted,
                wait_ms,
                sojourn_ms,
                violated,
            } => {
                outcome.admitted += 1;
                if converted {
                    outcome.defer_to_admit += 1;
                } else {
                    outcome.admitted_direct += 1;
                }
                total_wait += wait_ms;
                sojourns.push(sojourn_ms);
                if violated {
                    outcome.violations += 1;
                }
            }
            JobFate::Rejected { converted: true } => outcome.defer_to_reject += 1,
            JobFate::Rejected { converted: false } => outcome.rejected += 1,
            JobFate::Dropped => outcome.dropped += 1,
            // This scenario runs an unbounded queue; the overload
            // scenario owns shedding and counts it separately.
            JobFate::Shed => outcome.rejected += 1,
        }
    }
    if outcome.admitted > 0 {
        outcome.mean_wait_ms = total_wait / outcome.admitted as f64;
    }
    sojourns.sort_by(|a, b| a.total_cmp(b));
    outcome.p50_sojourn_ms = percentile(&sojourns, 0.50);
    outcome.p95_sojourn_ms = percentile(&sojourns, 0.95);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> DeadlineConfig {
        DeadlineConfig {
            arrivals: 250,
            workers: 3,
            ..Default::default()
        }
    }

    fn get<'a>(report: &'a DeadlineReport, label: &str) -> &'a PolicyOutcome {
        report.outcome(label).expect("known policy label")
    }

    #[test]
    fn uncertainty_aware_beats_mean_only_on_violation_rate() {
        let report = run_deadline_scenario(&small_config());
        let mean_only = get(&report, "mean-only");
        let tail = get(&report, "uncertainty (θ=0.9)");
        let admit_all = get(&report, "admit-all");
        // Compare rates only when both policies admitted work — a policy
        // that admits nothing has a NaN rate, not a perfect one.
        assert!(tail.admitted > 0 && mean_only.admitted > 0);
        assert!(
            tail.violation_rate() < mean_only.violation_rate(),
            "tail {} vs mean-only {}\n{}",
            tail.violation_rate(),
            mean_only.violation_rate(),
            report.render()
        );
        assert!(
            mean_only.violation_rate() <= admit_all.violation_rate() + 1e-12,
            "any admission control should not hurt:\n{}",
            report.render()
        );
        // The tail policy must still do useful work, not reject everything.
        assert!(
            tail.admitted * 3 >= mean_only.admitted,
            "tail admits too little:\n{}",
            report.render()
        );
        assert_eq!(admit_all.admitted, report.arrivals);
    }

    fn assert_reports_bit_identical(a: &DeadlineReport, b: &DeadlineReport) {
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.admitted, y.admitted);
            assert_eq!(x.admitted_direct, y.admitted_direct);
            assert_eq!(x.defer_to_admit, y.defer_to_admit);
            assert_eq!(x.defer_to_reject, y.defer_to_reject);
            assert_eq!(x.dropped, y.dropped);
            assert_eq!(x.rejected, y.rejected);
            assert_eq!(x.violations, y.violations);
            assert_eq!(x.mean_wait_ms.to_bits(), y.mean_wait_ms.to_bits());
            assert_eq!(x.p50_sojourn_ms.to_bits(), y.p50_sojourn_ms.to_bits());
            assert_eq!(x.p95_sojourn_ms.to_bits(), y.p95_sojourn_ms.to_bits());
        }
        assert_eq!(a.calibration.len(), b.calibration.len());
        for (x, y) in a.calibration.iter().zip(&b.calibration) {
            assert_eq!(x.shape, y.shape);
            assert_eq!(x.n, y.n);
            assert_eq!(x.coverage50.to_bits(), y.coverage50.to_bits());
            assert_eq!(x.coverage90.to_bits(), y.coverage90.to_bits());
            assert_eq!(x.coverage99.to_bits(), y.coverage99.to_bits());
            assert_eq!(x.mean_pit.to_bits(), y.mean_pit.to_bits());
            assert_eq!(
                x.predicted_violation_rate.to_bits(),
                y.predicted_violation_rate.to_bits()
            );
            assert_eq!(
                x.observed_violation_rate.to_bits(),
                y.observed_violation_rate.to_bits()
            );
        }
    }

    #[test]
    fn scenario_is_deterministic() {
        // Bit-exact under the event-driven scheduler, single- and
        // multi-server.
        for servers in [1usize, 2] {
            let config = DeadlineConfig {
                servers,
                ..small_config()
            };
            let a = run_deadline_scenario(&config);
            let b = run_deadline_scenario(&config);
            assert_reports_bit_identical(&a, &b);
        }
    }

    #[test]
    fn retry_converts_defers_into_throughput() {
        // The acceptance claim of the retry queue: with everything else
        // equal, re-deciding deferred arrivals strictly raises the
        // uncertainty-aware policy's throughput over the terminal-defer
        // semantics without giving up its violation-rate advantage.
        let with_retry = run_deadline_scenario(&small_config());
        let terminal = run_deadline_scenario(&DeadlineConfig {
            retry: RetryConfig::terminal(),
            ..small_config()
        });
        let label = "uncertainty (θ=0.9)";
        let retry = get(&with_retry, label);
        let dropped = get(&terminal, label);
        assert!(
            retry.defer_to_admit > 0,
            "defers must convert:\n{}",
            with_retry.render()
        );
        assert_eq!(retry.dropped, 0, "no silent drops with retries enabled");
        assert!(
            dropped.dropped > 0,
            "terminal defer still drops work:\n{}",
            terminal.render()
        );
        assert!(
            retry.throughput() > dropped.throughput(),
            "retry throughput {} vs terminal {}\n{}\n{}",
            retry.throughput(),
            dropped.throughput(),
            with_retry.render(),
            terminal.render()
        );
        // Conversions are admitted at the same θ threshold, so the SLO
        // record stays at the terminal-defer level.
        assert!(
            retry.violation_rate() <= dropped.violation_rate() + 0.02,
            "retries degraded the violation rate: {} vs {}\n{}\n{}",
            retry.violation_rate(),
            dropped.violation_rate(),
            with_retry.render(),
            terminal.render()
        );
    }

    #[test]
    fn bursty_arrivals_are_deterministic_and_stress_the_defer_band() {
        let config = DeadlineConfig {
            arrival_process: ArrivalProcess::bursty(),
            ..small_config()
        };
        let a = run_deadline_scenario(&config);
        let b = run_deadline_scenario(&config);
        assert_reports_bit_identical(&a, &b);
        let tail = get(&a, "uncertainty (θ=0.9)");
        assert!(tail.admitted > 0);
        assert!(
            tail.defer_to_admit + tail.defer_to_reject > 0,
            "bursts should exercise the retry queue:\n{}",
            a.render()
        );
    }

    #[test]
    fn utilization_sweep_matches_standalone_runs() {
        let config = DeadlineConfig {
            arrivals: 120,
            workers: 2,
            ..Default::default()
        };
        let sweep = run_utilization_sweep(&config, &[0.4, 0.9]);
        assert_eq!(sweep.len(), 2);
        for (report, rho) in sweep.iter().zip([0.4, 0.9]) {
            assert_eq!(report.utilization, rho);
            let standalone = run_deadline_scenario(&DeadlineConfig {
                utilization: rho,
                ..config
            });
            assert_reports_bit_identical(report, &standalone);
        }
        // Higher load must hurt the no-control baseline.
        let low = get(&sweep[0], "admit-all");
        let high = get(&sweep[1], "admit-all");
        assert!(
            high.mean_wait_ms > low.mean_wait_ms,
            "ρ=0.9 mean wait {} vs ρ=0.4 {}",
            high.mean_wait_ms,
            low.mean_wait_ms
        );
        assert!(!render_utilization_sweep(&sweep).is_empty());
    }

    #[test]
    fn violation_rate_is_nan_when_nothing_admitted() {
        let outcome = PolicyOutcome {
            label: "reject-everything".into(),
            admitted: 0,
            admitted_direct: 0,
            defer_to_admit: 0,
            defer_to_reject: 0,
            dropped: 0,
            rejected: 10,
            violations: 0,
            mean_wait_ms: 0.0,
            p50_sojourn_ms: f64::NAN,
            p95_sojourn_ms: f64::NAN,
        };
        assert!(
            outcome.violation_rate().is_nan(),
            "an empty SLO record is not a perfect one"
        );
        assert_eq!(fmt_rate(outcome.violation_rate()), "n/a");
    }

    #[test]
    fn unknown_policy_label_is_none_not_panic() {
        let report = run_deadline_scenario(&DeadlineConfig {
            arrivals: 40,
            ..Default::default()
        });
        assert!(report.outcome("uncertainty (θ=0.95)").is_none());
        assert!(report.outcome("admit-all").is_some());
    }

    #[test]
    fn traffic_warms_the_fit_cache() {
        let report = run_deadline_scenario(&small_config());
        // MICRO's literal-perturbed grid and the repeated SELJOIN/TPCH
        // templates must collapse onto shared shape entries.
        assert!(
            (report.cache.shapes as f64) < 0.8 * report.distinct_queries as f64,
            "shapes {} vs distinct queries {}",
            report.cache.shapes,
            report.distinct_queries
        );
        assert!(report.cache.context_hits + report.cache.fit_hits > 0);
        // Repeated arrivals of one pooled query are identical instances:
        // every repeat after the first skips the sample pass entirely.
        assert!(
            report.cache.sel_hits > 0,
            "repeated arrivals should hit the estimate cache: {:?}",
            report.cache
        );
        assert!(report.cache.sel_entries > 0);
    }

    #[test]
    fn ninety_percent_interval_coverage_is_in_the_tolerance_band() {
        // The calibration headline, over the default 400-arrival stream:
        // the predicted 90% central intervals must actually cover the
        // simulated actual times at roughly the nominal rate. The band is
        // wide — the simulated "actual" generator shares the cost model
        // but draws its own noise — yet tight enough to catch a predictor
        // whose variance collapses (coverage → low) or explodes
        // (coverage → 1.0 with a degenerate PIT).
        let config = DeadlineConfig::default();
        let mut prepared = prepare(&config);
        let report = run_prepared(&mut prepared, &config);
        assert!(!report.calibration.is_empty());
        let total: u64 = report.calibration.iter().map(|s| s.n).sum();
        assert_eq!(total as usize, report.arrivals);
        let cov90 = report.overall_coverage(90);
        assert!(
            (0.70..=1.0).contains(&cov90),
            "90% interval coverage {cov90} out of tolerance\n{}",
            report.render()
        );
        // Coverage must be monotone in the nominal level.
        let (cov50, cov99) = (report.overall_coverage(50), report.overall_coverage(99));
        assert!(
            cov50 <= cov90 && cov90 <= cov99,
            "coverage not monotone: {cov50} / {cov90} / {cov99}"
        );
        // The same numbers landed as gauges on the service registry, so
        // `PredictionService::telemetry()` is the one-stop snapshot.
        let snap = prepared.service.telemetry();
        let s = &report.calibration[0];
        assert_eq!(
            snap.gauge(
                "uaq_calibration_coverage",
                &[("interval", "90"), ("shape", s.shape.as_str())],
            ),
            Some(s.coverage90)
        );
        assert_eq!(
            snap.gauge(
                "uaq_calibration_observations",
                &[("shape", s.shape.as_str())]
            ),
            Some(s.n as f64)
        );
    }

    #[test]
    fn report_renders_all_policies() {
        let report = run_deadline_scenario(&DeadlineConfig {
            arrivals: 40,
            ..Default::default()
        });
        let text = report.render();
        assert!(text.contains("admit-all"));
        assert!(text.contains("mean-only"));
        assert!(text.contains("uncertainty"));
        assert!(text.contains("viol rate"));
        assert!(text.contains("d→adm"));
    }
}
