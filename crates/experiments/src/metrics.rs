//! Experiment metrics (§6.3): the correlation coefficients `r_s`/`r_p`
//! between predicted standard deviations and actual errors, the
//! distributional distance `D_n`, and the selectivity-level metrics behind
//! Tables 6–9.

use crate::runner::{CellOutcome, SelRecord};
use uaq_stats::{dn, normalized_errors, pearson, spearman};

/// `(r_s, r_p)` between predicted σ and actual prediction error — the
/// paper's headline metric (M1).
pub fn correlation(outcome: &CellOutcome) -> (f64, f64) {
    let stds = outcome.predicted_stds();
    let errors = outcome.errors();
    (spearman(&stds, &errors), pearson(&stds, &errors))
}

/// The average `D_n` over the α grid — the paper's metric (M2).
pub fn distribution_distance(outcome: &CellOutcome) -> f64 {
    let e = normalized_errors(
        &outcome.predicted_means(),
        &outcome.predicted_stds(),
        &outcome.actuals(),
    );
    dn(&e)
}

/// `Pr_n(α)` at a given α for an outcome (Figure 5's empirical curve).
pub fn empirical_pr(outcome: &CellOutcome, alpha: f64) -> f64 {
    let e = normalized_errors(
        &outcome.predicted_means(),
        &outcome.predicted_stds(),
        &outcome.actuals(),
    );
    uaq_stats::empirical_pr(&e, alpha)
}

/// Scatter data: `(σ_i, e_i)` pairs (Figures 3 and 6).
pub fn scatter(outcome: &CellOutcome) -> Vec<(f64, f64)> {
    outcome
        .records
        .iter()
        .map(|r| (r.predicted_std_ms, r.error_ms()))
        .collect()
}

/// Scatter with the single largest-σ point removed — the paper's Figure 3(b)
/// outlier-robustness exercise.
pub fn scatter_without_top_outlier(outcome: &CellOutcome) -> Vec<(f64, f64)> {
    let mut pts = scatter(outcome);
    if let Some((idx, _)) = pts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite"))
    {
        pts.remove(idx);
    }
    pts
}

/// `(r_s, r_p)` of arbitrary scatter points.
pub fn scatter_correlation(points: &[(f64, f64)]) -> (f64, f64) {
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    (spearman(&xs, &ys), pearson(&xs, &ys))
}

/// All per-operator selectivity records of a cell, flattened.
pub fn all_sel_records(outcome: &CellOutcome) -> Vec<SelRecord> {
    outcome
        .records
        .iter()
        .flat_map(|r| r.sels.iter().cloned())
        .collect()
}

/// Table 6: `(r_s, r_p)` between estimated selectivity-error std-devs and
/// actual absolute errors.
pub fn sel_error_correlation(records: &[SelRecord]) -> (f64, f64) {
    let stds: Vec<f64> = records.iter().map(|s| s.estimated_std).collect();
    let errs: Vec<f64> = records.iter().map(SelRecord::abs_error).collect();
    (spearman(&stds, &errs), pearson(&stds, &errs))
}

/// Table 7: `(r_s, r_p)` between estimated and actual selectivities.
pub fn sel_value_correlation(records: &[SelRecord]) -> (f64, f64) {
    let est: Vec<f64> = records.iter().map(|s| s.estimated).collect();
    let act: Vec<f64> = records.iter().map(|s| s.actual).collect();
    (spearman(&est, &act), pearson(&est, &act))
}

/// Table 8: mean relative error of the selectivity estimates.
pub fn mean_relative_sel_error(records: &[SelRecord]) -> f64 {
    uaq_stats::mean(
        &records
            .iter()
            .map(SelRecord::relative_error)
            .collect::<Vec<_>>(),
    )
}

/// Median relative error — robust companion to the mean. At tiny sampling
/// ratios, operators whose true selectivity lies *below the sample's
/// resolution* (1/∏n_k) receive smoothed pseudo-count estimates whose
/// relative error is astronomically large; they dominate the mean but not
/// the median (the paper's databases were 250× larger, so its Table 8 never
/// hits this regime).
pub fn median_relative_sel_error(records: &[SelRecord]) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    let mut errs: Vec<f64> = records.iter().map(SelRecord::relative_error).collect();
    errs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    errs[errs.len() / 2]
}

/// Table 9: error correlation restricted to records with relative error
/// above the threshold (the paper uses 0.2). Returns `None` when fewer than
/// three qualifying records exist (the paper prints "N/A").
pub fn sel_error_correlation_above(
    records: &[SelRecord],
    min_relative_error: f64,
) -> Option<(f64, f64)> {
    let filtered: Vec<SelRecord> = records
        .iter()
        .filter(|s| s.relative_error() > min_relative_error)
        .cloned()
        .collect();
    if filtered.len() < 3 {
        return None;
    }
    Some(sel_error_correlation(&filtered))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::QueryRecord;

    fn outcome_from(points: &[(f64, f64, f64)]) -> CellOutcome {
        // (mean, std, actual)
        CellOutcome {
            config_label: "test".into(),
            records: points
                .iter()
                .enumerate()
                .map(|(i, &(mean, std, actual))| QueryRecord {
                    name: format!("q{i}"),
                    predicted_mean_ms: mean,
                    predicted_std_ms: std,
                    actual_ms: actual,
                    full_pass_seconds: 1.0,
                    sample_pass_seconds: 0.05,
                    sels: vec![],
                })
                .collect(),
        }
    }

    #[test]
    fn correlation_detects_calibrated_uncertainty() {
        // Errors exactly proportional to σ ⇒ perfect rank correlation.
        let pts: Vec<(f64, f64, f64)> = (1..=20)
            .map(|i| {
                let sigma = i as f64;
                (100.0, sigma, 100.0 + 2.0 * sigma)
            })
            .collect();
        let (rs, rp) = correlation(&outcome_from(&pts));
        assert!((rs - 1.0).abs() < 1e-9);
        assert!((rp - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dn_small_for_calibrated_normals() {
        let mut rng = uaq_stats::Rng::new(5);
        let pts: Vec<(f64, f64, f64)> = (0..5000)
            .map(|_| {
                let sigma = 1.0 + rng.f64() * 5.0;
                (50.0, sigma, rng.normal(50.0, sigma))
            })
            .collect();
        let d = distribution_distance(&outcome_from(&pts));
        assert!(d < 0.03, "dn={d}");
    }

    #[test]
    fn outlier_removal_drops_max_sigma_point() {
        let pts = vec![(10.0, 1.0, 11.0), (10.0, 99.0, 12.0), (10.0, 2.0, 13.0)];
        let o = outcome_from(&pts);
        let sc = scatter_without_top_outlier(&o);
        assert_eq!(sc.len(), 2);
        assert!(sc.iter().all(|&(s, _)| s < 99.0));
    }

    #[test]
    fn sel_metrics() {
        let records = vec![
            SelRecord {
                node: 0,
                estimated: 0.10,
                estimated_std: 0.01,
                actual: 0.11,
            },
            SelRecord {
                node: 1,
                estimated: 0.50,
                estimated_std: 0.05,
                actual: 0.45,
            },
            SelRecord {
                node: 2,
                estimated: 0.90,
                estimated_std: 0.09,
                actual: 0.70,
            },
        ];
        let (rs, _rp) = sel_value_correlation(&records);
        assert!(rs > 0.99);
        let mre = mean_relative_sel_error(&records);
        assert!(mre > 0.0 && mre < 0.2);
        // Threshold 0.2 leaves <3 records ⇒ None.
        assert!(sel_error_correlation_above(&records, 0.2).is_none());
        assert!(sel_error_correlation_above(&records, 0.0).is_some());
    }

    #[test]
    fn empirical_pr_monotone_in_alpha() {
        let pts = vec![
            (10.0, 2.0, 11.0),
            (10.0, 2.0, 14.0),
            (10.0, 2.0, 10.5),
            (10.0, 2.0, 18.0),
        ];
        let o = outcome_from(&pts);
        assert!(empirical_pr(&o, 0.5) <= empirical_pr(&o, 1.0));
        assert!(empirical_pr(&o, 1.0) <= empirical_pr(&o, 4.0));
        assert_eq!(empirical_pr(&o, 5.0), 1.0);
    }
}
